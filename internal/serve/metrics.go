package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"dyncomp/internal/tdg"
)

// metrics is a minimal, dependency-free Prometheus-text-format
// collector: labelled monotonic counters plus a handful of gauges
// computed at scrape time (cache statistics, job states, uptime). It is
// deliberately not a full client library — the serving layer needs a
// dozen series, not a registry.
type metrics struct {
	mu       sync.Mutex
	counters map[string]map[string]int64 // metric name -> label set -> value
}

func newMetrics() *metrics {
	return &metrics{counters: map[string]map[string]int64{}}
}

// inc adds one to the counter identified by name and a rendered label
// set like `endpoint="run"` (empty for unlabelled counters).
func (m *metrics) inc(name, labels string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	series, ok := m.counters[name]
	if !ok {
		series = map[string]int64{}
		m.counters[name] = series
	}
	series[labels]++
}

// snapshot returns the counters as sorted, rendered sample lines.
func (m *metrics) snapshot() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var lines []string
	for name, series := range m.counters {
		for labels, v := range series {
			if labels == "" {
				lines = append(lines, fmt.Sprintf("%s %d", name, v))
			} else {
				lines = append(lines, fmt.Sprintf("%s{%s} %d", name, labels, v))
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// Metric names. Requests are counted per endpoint and status class;
// runs and jobs per engine / terminal state.
const (
	metricRequests   = "dyncomp_serve_requests_total"
	metricRuns       = "dyncomp_serve_runs_total"
	metricJobs       = "dyncomp_serve_jobs_total"
	metricChunks     = "dyncomp_serve_chunks_total"
	metricOptimize   = "dyncomp_serve_optimizations_total"
	metricRejections = "dyncomp_serve_rejections_total"
)

// predErrBuckets are the upper bounds of the prediction-error histogram
// (relative error; +Inf is implicit). The grid is log-spaced around the
// tolerances users actually request (0.1%–10%).
var predErrBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1}

// errHist is a minimal fixed-bucket Prometheus histogram for the
// per-point prediction errors of sampled sweeps.
type errHist struct {
	mu     sync.Mutex
	counts []int64 // per bucket; last is +Inf
	sum    float64
	n      int64
}

func (h *errHist) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]int64, len(predErrBuckets)+1)
	}
	i := 0
	for i < len(predErrBuckets) && v > predErrBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// write renders the histogram in the Prometheus text format with
// cumulative bucket counts.
func (h *errHist) write(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.counts == nil {
		h.counts = make([]int64, len(predErrBuckets)+1)
	}
	cum := int64(0)
	for i, ub := range predErrBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
	}
	cum += h.counts[len(predErrBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the accumulated counters plus scrape-time gauges for the
// derivation cache, the job store and the process uptime.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP %s HTTP requests served, by endpoint and status class.\n", metricRequests)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricRequests)
	fmt.Fprintf(w, "# HELP %s Synchronous /v1/run evaluations, by engine.\n", metricRuns)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricRuns)
	fmt.Fprintf(w, "# HELP %s Sweep jobs that reached a terminal state, by state.\n", metricJobs)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricJobs)
	fmt.Fprintf(w, "# HELP %s Distributed sweep chunks evaluated for a coordinator, by engine.\n", metricChunks)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricChunks)
	fmt.Fprintf(w, "# HELP %s Design-space optimizations completed, by engine.\n", metricOptimize)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricOptimize)
	fmt.Fprintf(w, "# HELP %s Requests rejected by admission control, by reason (unauthorized, quota_jobs, quota_points, overloaded).\n", metricRejections)
	fmt.Fprintf(w, "# TYPE %s counter\n", metricRejections)
	for _, line := range s.metrics.snapshot() {
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "# HELP dyncomp_serve_inflight_requests Work requests currently in flight (run/optimize/chunks/sweep submissions).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_inflight_requests gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_inflight_requests %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP dyncomp_serve_jobs_evicted_total Settled jobs evicted by TTL or the max-jobs bound.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_jobs_evicted_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_jobs_evicted_total %d\n", s.jobsEvicted.Load())
	fmt.Fprintf(w, "# HELP dyncomp_serve_panics_total Handler panics recovered into structured 500s.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_panics_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_panics_total %d\n", s.panics.Load())
	fmt.Fprintf(w, "# HELP dyncomp_serve_chunk_points_total Grid points evaluated through the chunk endpoint.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_chunk_points_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_chunk_points_total %d\n", s.chunkPoints.Load())

	hits, misses := s.cache.Stats()
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_hits_total Derivation-cache requests served by rebinding.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_hits_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_derive_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_misses_total Derivations actually performed (including re-derivations of evicted shapes).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_misses_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_derive_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_evictions_total Templates evicted by the LRU entry bound.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_evictions_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_derive_cache_evictions_total %d\n", s.cache.Evictions())
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_shapes Cached structural shapes.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_shapes gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_derive_cache_shapes %d\n", s.cache.Shapes())
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_entry_limit Entry bound of the derivation cache (0: unbounded).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_entry_limit gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_derive_cache_entry_limit %d\n", s.cache.Limit())
	fmt.Fprintf(w, "# HELP dyncomp_serve_derive_cache_shape_hits Requests served per cached shape (occupancy snapshot).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_derive_cache_shape_hits gauge\n")
	for _, sh := range s.cache.Snapshot() {
		fmt.Fprintf(w, "dyncomp_serve_derive_cache_shape_hits{arch=%q,shape=%q} %d\n", sh.Arch, sh.Digest, sh.Hits)
	}
	fmt.Fprintf(w, "# HELP dyncomp_serve_tdg_compiles_total Temporal-dependency-graph compilations performed process-wide; rebound shapes patch weight tables instead.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_tdg_compiles_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_tdg_compiles_total %d\n", tdg.Compiles())

	batches := s.sweepBatches.Load()
	batchPoints := s.sweepBatchPoints.Load()
	batchLanes := s.sweepBatchLanes.Load()
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_batches_total Batched lane evaluations dispatched by sweep jobs.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_batches_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_batches_total %d\n", batches)
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_batch_points_total Grid points evaluated through the batched path.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_batch_points_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_batch_points_total %d\n", batchPoints)
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_batch_lanes_total Lane capacity offered by those batches (batches x width).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_batch_lanes_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_batch_lanes_total %d\n", batchLanes)
	occupancy := 0.0
	if batchLanes > 0 {
		occupancy = float64(batchPoints) / float64(batchLanes)
	}
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_batch_occupancy Mean lane utilization of batched sweep evaluations (points / capacity).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_batch_occupancy gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_batch_occupancy %.4f\n", occupancy)

	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_simulated_points_total Sampled-sweep grid points evaluated exactly.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_simulated_points_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_simulated_points_total %d\n", s.sweepSimulated.Load())
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_predicted_points_total Sampled-sweep grid points filled in by the surrogate model.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_predicted_points_total counter\n")
	fmt.Fprintf(w, "dyncomp_serve_sweep_predicted_points_total %d\n", s.sweepPredicted.Load())
	fmt.Fprintf(w, "# HELP dyncomp_serve_sweep_pred_error Relative prediction error per predicted point (observed under sample_verify, declared bound otherwise).\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_sweep_pred_error histogram\n")
	s.predErrors.write(w, "dyncomp_serve_sweep_pred_error")

	queued, running := s.jobs.active()
	fmt.Fprintf(w, "# HELP dyncomp_serve_jobs_queued Sweep jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_jobs_queued gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "# HELP dyncomp_serve_jobs_running Sweep jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_jobs_running gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_jobs_running %d\n", running)

	fmt.Fprintf(w, "# HELP dyncomp_serve_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE dyncomp_serve_uptime_seconds gauge\n")
	fmt.Fprintf(w, "dyncomp_serve_uptime_seconds %.3f\n", time.Since(s.started).Seconds())
}

// statusRecorder captures the response status for the request-counting
// middleware while keeping http.ResponseController features (notably
// Flush, which the SSE endpoint needs) reachable through Unwrap.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Unwrap lets http.NewResponseController reach the underlying writer.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// countRequests wraps a handler with the per-endpoint request counter.
func (s *Server) countRequests(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.metrics.inc(metricRequests,
			fmt.Sprintf(`endpoint=%q,class=%q`, endpoint, fmt.Sprintf("%dxx", status/100)))
	}
}
