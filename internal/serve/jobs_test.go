package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitJob polls GET /v1/sweeps/{id} until the state predicate holds.
func waitJob(t *testing.T, base, id string, pred func(JobResult) bool) JobResult {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		jr := decodeBody[JobResult](t, resp)
		if pred(jr) {
			return jr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return JobResult{}
}

func terminal(jr JobResult) bool {
	switch jr.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// A full async sweep: submit, observe completion, read per-point results
// and cache statistics.
func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes: []Axis{
			{Name: "tokens", Values: []int64{20, 40}},
			{Name: "period", Values: []int64{500, 800, 1100}},
		},
		Params:  map[string]int64{"xsize": 5},
		Options: SweepOptions{Workers: 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	j := decodeBody[Job](t, resp)
	if j.ID == "" || j.Total != 6 {
		t.Fatalf("created job %+v", j)
	}

	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "done" {
		t.Fatalf("job settled as %q (err %q)", jr.State, jr.Error)
	}
	if jr.Done != 6 || jr.Stats == nil || jr.Stats.Points != 6 || jr.Stats.Failed != 0 {
		t.Fatalf("job result %+v / %+v", jr.Job, jr.Stats)
	}
	// One structural shape: xsize is fixed, tokens/period are parameters.
	if jr.Stats.DeriveCalls != 1 || jr.Stats.CacheHits != 5 {
		t.Fatalf("cache stats %+v, want 1 derivation + 5 hits", jr.Stats)
	}
	if len(jr.Points) != 6 {
		t.Fatalf("%d points returned", len(jr.Points))
	}
	for _, p := range jr.Points {
		if p.Error != "" || p.Result == nil || p.Result.FinalTimeNs == 0 {
			t.Fatalf("bad point %+v", p)
		}
		if _, ok := p.Params["period"]; !ok {
			t.Fatalf("point lost its parameters: %+v", p)
		}
	}

	// The job also appears in the listing.
	lresp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Jobs []Job `json:"jobs"`
	}](t, lresp)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("listing %+v", list.Jobs)
	}
}

// Cancelling a running job mid-sweep: the DELETE answers with a
// cancellable state, the job settles as "cancelled", and the partial
// results stay readable. The lte scenario with many symbols is slow
// enough to still be running when the DELETE lands.
func TestSweepJobCancelMidSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Engine:   "reference",
		Scenario: "lte",
		Axes:     []Axis{{Name: "symbols", Values: []int64{3000, 3001, 3002, 3003, 3004, 3005, 3006, 3007}}},
		Options:  SweepOptions{Workers: 1},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	j := decodeBody[Job](t, resp)

	// Wait until it actually runs, then cancel.
	waitJob(t, ts.URL, j.ID, func(jr JobResult) bool { return jr.State != "queued" })
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+j.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	dresp.Body.Close()

	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "cancelled" {
		t.Fatalf("job settled as %q, want cancelled", jr.State)
	}
	if jr.Stats == nil || len(jr.Points) != 8 {
		t.Fatalf("cancelled job lost its partial results: %+v", jr.Stats)
	}
	failed := 0
	for _, p := range jr.Points {
		if p.Error != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no point reports the cancellation")
	}

	// A second DELETE conflicts: the job is terminal.
	dreq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+j.ID, nil)
	dresp2, err := http.DefaultClient.Do(dreq2)
	if err != nil {
		t.Fatal(err)
	}
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", dresp2.StatusCode)
	}
	if got := errorCode(t, dresp2); got != CodeJobTerminal {
		t.Fatalf("second cancel code %q", got)
	}
}

// Cancelling a queued job settles it immediately — no worker ever runs
// it. A one-worker pool kept busy by a slow job guarantees queueing.
func TestSweepJobCancelWhileQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	slow := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Engine:   "reference",
		Scenario: "lte",
		Axes:     []Axis{{Name: "symbols", Values: []int64{5000, 5001, 5002, 5003}}},
		Options:  SweepOptions{Workers: 1},
	}))
	queued := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "tokens", Values: []int64{10}}},
	}))

	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: status %d", dresp.StatusCode)
	}
	got := decodeBody[Job](t, dresp)
	if got.State != "cancelled" {
		t.Fatalf("queued job state %q after cancel", got.State)
	}

	// Unblock the pool; the cancelled job must stay cancelled.
	dreq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+slow.ID, nil)
	if dresp2, err := http.DefaultClient.Do(dreq2); err == nil {
		dresp2.Body.Close()
	}
	time.Sleep(50 * time.Millisecond)
	jr := waitJob(t, ts.URL, queued.ID, terminal)
	if jr.State != "cancelled" {
		t.Fatalf("queued job resurrected as %q", jr.State)
	}
}

// The SSE stream delivers an initial state snapshot, progress events
// with absolute counts, and a terminal state event before EOF. A slow
// blocker job on a one-worker pool keeps the observed job queued until
// the stream is attached, so no event can be missed.
func TestSweepJobSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	blocker := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Engine:   "reference",
		Scenario: "lte",
		Axes:     []Axis{{Name: "symbols", Values: []int64{50000}}},
		Options:  SweepOptions{Workers: 1},
	}))
	j := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "tokens", Values: []int64{10, 20, 30}}},
		Options:  SweepOptions{Workers: 1},
	}))

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// With the stream attached, let the pool reach the observed job.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+blocker.ID, nil)
	if dresp, err := http.DefaultClient.Do(dreq); err == nil {
		dresp.Body.Close()
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var events []string
	var datas []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			datas = append(datas, data)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || len(events) != len(datas) {
		t.Fatalf("events %v", events)
	}
	if events[0] != "state" {
		t.Fatalf("first event %q, want state snapshot", events[0])
	}
	if last := events[len(events)-1]; last != "state" {
		t.Fatalf("last event %q, want terminal state", last)
	}
	var fin Job
	if err := json.Unmarshal([]byte(datas[len(datas)-1]), &fin); err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Done != 3 {
		t.Fatalf("terminal event %+v", fin)
	}
	sawProgress := false
	for i, name := range events {
		if name != "progress" {
			continue
		}
		sawProgress = true
		var p progressData
		if err := json.Unmarshal([]byte(datas[i]), &p); err != nil {
			t.Fatal(err)
		}
		if p.Total != 3 || p.Done < 1 || p.Done > 3 {
			t.Fatalf("progress event %+v", p)
		}
	}
	if !sawProgress {
		t.Fatalf("no progress event in %v", events)
	}
}

// Submitting more jobs than the queue holds answers 429.
func TestSweepQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, JobQueue: 1})
	mk := func() *http.Response {
		return postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
			Engine:   "reference",
			Scenario: "lte",
			Axes:     []Axis{{Name: "symbols", Values: []int64{4000, 4001}}},
			Options:  SweepOptions{Workers: 1},
		})
	}
	var ids []string
	full := false
	for i := 0; i < 8 && !full; i++ {
		resp := mk()
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decodeBody[Job](t, resp).ID)
		case http.StatusTooManyRequests:
			if got := errorCode(t, resp); got != CodeQueueFull {
				t.Fatalf("code %q", got)
			}
			full = true
		default:
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if !full {
		t.Fatal("queue never filled")
	}
	for _, id := range ids {
		dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+id, nil)
		if dresp, err := http.DefaultClient.Do(dreq); err == nil {
			dresp.Body.Close()
		}
	}
}

// Grid- and axes-level validation on job submission.
func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGridPoints: 10})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"no axes", `{"scenario":"didactic"}`, http.StatusBadRequest, CodeInvalidAxes},
		{"empty axis", `{"scenario":"didactic","axes":[{"name":"tokens","values":[]}]}`, http.StatusBadRequest, CodeInvalidAxes},
		{"unknown axis param", `{"scenario":"didactic","axes":[{"name":"bogus","values":[1]}]}`, http.StatusBadRequest, CodeInvalidAxes},
		{"duplicate axis", `{"scenario":"didactic","axes":[{"name":"tokens","values":[1]},{"name":"tokens","values":[2]}]}`, http.StatusBadRequest, CodeInvalidAxes},
		{"grid too large", `{"scenario":"didactic","axes":[{"name":"tokens","values":[1,2,3,4]},{"name":"period","values":[1,2,3]}]}`, http.StatusBadRequest, CodeGridTooLarge},
		{"unknown job", "", http.StatusNotFound, CodeJobNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "unknown job" {
				resp, err = http.Get(ts.URL + "/v1/sweeps/job-999999")
			} else {
				resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if got := errorCode(t, resp); got != tc.code {
				t.Fatalf("code %q, want %q", got, tc.code)
			}
		})
	}
}

// Closing the server cancels running jobs AND settles still-queued
// jobs; both end as cancelled with their SSE streams terminated.
func TestServerCloseCancelsRunningAndQueuedJobs(t *testing.T) {
	s := New(Config{JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	running := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Engine:   "reference",
		Scenario: "lte",
		Axes:     []Axis{{Name: "symbols", Values: []int64{6000, 6001, 6002, 6003}}},
		Options:  SweepOptions{Workers: 1},
	}))
	queued := decodeBody[Job](t, postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "tokens", Values: []int64{10}}},
	}))
	waitJob(t, ts.URL, running.ID, func(jr JobResult) bool { return jr.State == "running" })
	s.Close() // blocks until the worker settled the running job
	for _, id := range []string{running.ID, queued.ID} {
		jr := waitJob(t, ts.URL, id, terminal)
		if jr.State != "cancelled" {
			t.Fatalf("job %s settled as %q after Close, want cancelled", id, jr.State)
		}
	}

	// A submission after Close must be rejected, not queued forever.
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "tokens", Values: []int64{10}}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-Close submission: status %d, want 503", resp.StatusCode)
	}
	if got := errorCode(t, resp); got != CodeUnavailable {
		t.Fatalf("post-Close submission code %q", got)
	}
}
