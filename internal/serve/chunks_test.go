package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dyncomp/internal/sweep"
)

// A chunk evaluation is bit-identical to the same indices of a local
// sweep, preserves request-indices order and global grid indices, and
// reports the batch accounting the chunk consumed.
func TestChunkRunMatchesLocalSweep(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	axes := []Axis{
		{Name: "stages", Values: []int64{1, 2}},
		{Name: "seed", Values: []int64{1, 2, 3}},
	}
	// Indices 3..5 are the whole stages=2 cohort.
	indices := []int{3, 4, 5}
	resp := postJSON(t, ts.URL+"/v1/chunks", ChunkRequest{
		SweepRequest: SweepRequest{
			Scenario: "chain",
			Axes:     axes,
			Params:   map[string]int64{"tokens": 30},
			Options:  SweepOptions{BatchWidth: 2},
		},
		Indices: indices,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, errorCode(t, resp))
	}
	out := decodeBody[ChunkResponse](t, resp)
	if len(out.Points) != 3 {
		t.Fatalf("%d points, want 3", len(out.Points))
	}
	// The cohort of 3 at width 2 cuts into 2+1.
	if out.Batches != 2 || out.BatchedPoints != 3 {
		t.Fatalf("batches=%d batched_points=%d, want 2/3", out.Batches, out.BatchedPoints)
	}

	plan, aerr := s.prepareSweep(SweepRequest{
		Scenario: "chain",
		Axes:     axes,
		Params:   map[string]int64{"tokens": 30},
		Options:  SweepOptions{BatchWidth: 2},
	})
	if aerr != nil {
		t.Fatal(aerr)
	}
	local, err := sweep.RunIndices(plan.Axes, indices, plan.Gen, plan.Opts)
	if err != nil {
		t.Fatal(err)
	}
	for k, cp := range out.Points {
		want := local.Points[k]
		if cp.Index != want.Point.Index {
			t.Fatalf("point %d: index %d, want %d", k, cp.Index, want.Point.Index)
		}
		if cp.Error != "" {
			t.Fatalf("point %d failed: %s", cp.Index, cp.Error)
		}
		if cp.Result.FinalTimeNs != want.Run.FinalTimeNs ||
			cp.Result.Activations != want.Run.Activations ||
			cp.Result.Events != want.Run.Events ||
			cp.Result.Iterations != want.Run.Iterations {
			t.Fatalf("point %d: wire %+v != local %+v", cp.Index, cp.Result, want.Run)
		}
	}
}

// The chunk endpoint applies the full sweep validation plus its own
// index checks.
func TestChunkRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	axes := []Axis{{Name: "seed", Values: []int64{1, 2, 3}}}
	cases := []struct {
		name string
		req  ChunkRequest
		code string
	}{
		{
			name: "unknown scenario",
			req: ChunkRequest{
				SweepRequest: SweepRequest{Scenario: "nope", Axes: axes},
				Indices:      []int{0},
			},
			code: CodeUnknownScenario,
		},
		{
			name: "no indices",
			req: ChunkRequest{
				SweepRequest: SweepRequest{Scenario: "didactic", Axes: axes},
			},
			code: CodeInvalidIndices,
		},
		{
			name: "out of range",
			req: ChunkRequest{
				SweepRequest: SweepRequest{Scenario: "didactic", Axes: axes},
				Indices:      []int{0, 7},
			},
			code: CodeInvalidIndices,
		},
		{
			name: "duplicate index",
			req: ChunkRequest{
				SweepRequest: SweepRequest{Scenario: "didactic", Axes: axes},
				Indices:      []int{1, 1},
			},
			code: CodeInvalidIndices,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/chunks", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			if code := errorCode(t, resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}
}

// Chunks served show up in /metrics: the per-engine counter and the
// points total.
func TestChunkMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/chunks", ChunkRequest{
		SweepRequest: SweepRequest{
			Scenario: "didactic",
			Axes:     []Axis{{Name: "seed", Values: []int64{1, 2}}},
			Params:   map[string]int64{"tokens": 20},
		},
		Indices: []int{0, 1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`dyncomp_serve_chunks_total{engine="equivalent"} 1`,
		"dyncomp_serve_chunk_points_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
