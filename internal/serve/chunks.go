package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"dyncomp/internal/sweep"
)

// This file is the worker side of the distributed sweep fabric
// (internal/shard): POST /v1/chunks evaluates one coordinator-assigned
// chunk — a set of row-major grid indices of a sweep the coordinator
// planned — synchronously, against the worker's process-wide derivation
// cache. The coordinator routes whole shape cohorts to one worker, so
// the cache stays hot across the chunks of a job, and aligns chunk cuts
// to the batch width, so the batched-lane accounting of the fleet
// matches the single-process sweep bit for bit.

// ChunkRequest is the body of POST /v1/chunks: a full sweep description
// (identical to POST /v1/sweeps, so the worker validates and maps
// options exactly as a local job would) plus the grid indices this
// worker is asked to evaluate.
type ChunkRequest struct {
	SweepRequest
	Indices []int `json:"indices"`
}

// ChunkPoint is one evaluated point of a chunk: the sweep wire point
// plus its row-major index in the full grid, which is what the
// coordinator merges results back into grid order by.
type ChunkPoint struct {
	Index int `json:"index"`
	SweepPoint
}

// ChunkResponse is the body of a successful POST /v1/chunks. Points
// come back in request-indices order. Batches/BatchedPoints report the
// batched-lane evaluations this chunk consumed, feeding the
// coordinator's fleet-wide occupancy accounting.
type ChunkResponse struct {
	Points        []ChunkPoint `json:"points"`
	Batches       int          `json:"batches,omitempty"`
	BatchedPoints int          `json:"batched_points,omitempty"`
}

// handleChunkRun serves POST /v1/chunks: validate the embedded sweep
// request through the same path as a job submission, then evaluate just
// the requested indices on the caller's request context — a coordinator
// abandoning the chunk (retry elsewhere, job cancel) cancels the
// evaluation here too.
func (s *Server) handleChunkRun(w http.ResponseWriter, r *http.Request) {
	var req ChunkRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	plan, aerr := s.prepareSweep(req.SweepRequest)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	if len(req.Indices) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidIndices, "no indices")
		return
	}
	if plan.Opts.Sample.Enabled() {
		// A chunk sees only its shard of the grid; the surrogate needs the
		// whole grid to choose what to simulate. Sampled sweeps stay
		// single-process.
		writeError(w, http.StatusBadRequest, CodeInvalidSample,
			"options.sample_tolerance is not supported on chunk evaluation")
		return
	}
	if !s.admitPoints(w, r, len(req.Indices)) {
		return
	}

	opts := plan.Opts
	opts.Cache = s.cache
	res, err := sweep.RunIndicesContext(r.Context(), plan.Axes, req.Indices, plan.Gen, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"chunk evaluation exceeded the request deadline")
			return
		}
		if errors.Is(err, context.Canceled) {
			// The coordinator went away; there is nobody to answer.
			return
		}
		// GridSelect rejected the selection (out of range, duplicate);
		// engine resolution already passed in prepareSweep.
		writeError(w, http.StatusBadRequest, CodeInvalidIndices, "%v", err)
		return
	}
	s.metrics.inc(metricChunks, fmt.Sprintf(`engine=%q`, plan.Engine))
	s.chunkPoints.Add(int64(len(res.Points)))

	out := ChunkResponse{
		Points:        make([]ChunkPoint, 0, len(res.Points)),
		Batches:       res.Stats.Batches,
		BatchedPoints: res.Stats.BatchedPoints,
	}
	for _, pr := range res.Points {
		out.Points = append(out.Points, ChunkPoint{Index: pr.Point.Index, SweepPoint: pointJSON(pr)})
	}
	writeJSON(w, http.StatusOK, out)
}
