package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// inlineSpec is the served twin of the optimizer's reference design
// space: one function at 1 op/ns fed by a strictly periodic source, so
// final time is exactly (count-1)·period + work and every assertion
// below is closed-form.
const inlineSpec = `{
  "version": 1,
  "name": "wiregrid",
  "parameters": [
    {"name": "period", "default": 700,
     "values": [500, 550, 600, 650, 700, 750, 800, 850],
     "power": {"scale": 2e5, "exp": -1}},
    {"name": "work", "default": 100,
     "values": [50, 100, 150, 200],
     "power": {"scale": 0.5}, "area": {"base": 1, "scale": 0.01}}
  ],
  "channels": [
    {"name": "in", "kind": "rendezvous"},
    {"name": "out", "kind": "rendezvous"}
  ],
  "functions": [
    {"name": "F", "body": [
      {"read": "in"},
      {"exec": {"label": "T", "cost": {"kind": "fixed", "ops": "$work"}}},
      {"write": "out"}
    ]}
  ],
  "resources": [{"name": "P1", "kind": "processor", "ops_per_sec": 1e9}],
  "mapping": [{"resource": "P1", "functions": ["F"]}],
  "sources": [{"name": "src", "channel": "in", "count": 40,
               "schedule": {"kind": "periodic", "period": "$period", "offset": 0}}],
  "sinks": [{"name": "sink", "channel": "out"}]
}`

// inlineFinal is the closed-form final time of inlineSpec.
func inlineFinal(period, work int64) int64 { return 39*period + work }

// An inline architecture evaluates end to end, the response names the
// spec instead of a scenario, and a structurally identical repeat is a
// derive-cache rebind — the shape key of the built model feeds the
// same process-wide cache as registry scenarios.
func TestRunInlineArchitecture(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := RunRequest{
		Architecture: json.RawMessage(inlineSpec),
		Params:       map[string]int64{"period": 600, "work": 150},
	}

	resp := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, errorCode(t, resp))
	}
	rr := decodeBody[RunResponse](t, resp)
	if rr.Architecture != "wiregrid" || rr.Scenario != "" {
		t.Fatalf("response names %q / scenario %q", rr.Architecture, rr.Scenario)
	}
	if rr.Result.FinalTimeNs != inlineFinal(600, 150) {
		t.Fatalf("final %d, want %d", rr.Result.FinalTimeNs, inlineFinal(600, 150))
	}
	if rr.Cache.Misses == 0 {
		t.Fatalf("first inline run should miss the derive cache: %+v", rr.Cache)
	}

	// Different parameters, same structure: a rebind, not a re-derivation.
	req.Params = map[string]int64{"period": 800, "work": 50}
	resp = postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d", resp.StatusCode)
	}
	rr2 := decodeBody[RunResponse](t, resp)
	if rr2.Result.FinalTimeNs != inlineFinal(800, 50) {
		t.Fatalf("second final %d, want %d", rr2.Result.FinalTimeNs, inlineFinal(800, 50))
	}
	if rr2.Cache.Hits <= rr.Cache.Hits {
		t.Fatalf("identical structure did not rebind: hits %d -> %d", rr.Cache.Hits, rr2.Cache.Hits)
	}
	if rr2.Cache.Misses != rr.Cache.Misses {
		t.Fatalf("identical structure re-derived: misses %d -> %d", rr.Cache.Misses, rr2.Cache.Misses)
	}
}

// Inline runs agree bit for bit across every registered engine — the
// serving layer adds no semantics to the decoded model.
func TestRunInlineBitExactAcrossEngines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want := inlineFinal(700, 100)
	for _, eng := range []string{"reference", "equivalent", "adaptive"} {
		resp := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Engine:       eng,
			Architecture: json.RawMessage(inlineSpec),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", eng, resp.StatusCode)
		}
		rr := decodeBody[RunResponse](t, resp)
		if rr.Result.FinalTimeNs != want {
			t.Fatalf("%s: final %d, want %d", eng, rr.Result.FinalTimeNs, want)
		}
	}
}

// The inline error taxonomy at the HTTP layer: every malformed spec
// answers a stable code, mirroring the archjson table tests one level
// up the stack.
func TestRunInlineErrorCodes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"garbage spec", `{"architecture": {"version": 1}}`,
			http.StatusBadRequest, CodeInvalidArchitecture},
		{"future version", `{"architecture": {"version": 99, "name": "x"}}`,
			http.StatusBadRequest, CodeUnsupportedVersion},
		{"mutual exclusion", `{"scenario": "didactic", "architecture": ` + inlineSpec + `}`,
			http.StatusBadRequest, CodeInvalidArchitecture},
		{"unknown param", `{"architecture": ` + inlineSpec + `, "params": {"ghost": 1}}`,
			http.StatusBadRequest, CodeUnknownParam},
		{"unknown engine", `{"engine": "warp", "architecture": ` + inlineSpec + `}`,
			http.StatusBadRequest, CodeUnknownEngine},
		{"hybrid without group", `{"engine": "hybrid", "architecture": ` + inlineSpec + `}`,
			http.StatusBadRequest, CodeMissingGroup},
		{"resolved-value violation", `{"architecture": ` + inlineSpec + `, "params": {"period": -1}}`,
			http.StatusBadRequest, CodeInvalidArchitecture},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			if code := errorCode(t, resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}

	// An oversized body answers 413 before the spec is even looked at.
	big := `{"architecture": {"version": 1, "name": "` + strings.Repeat("x", maxBodyBytes) + `"}}`
	resp := post(big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeBodyTooLarge {
		t.Fatalf("oversize body: code %q", code)
	}
}

// An inline sweep: the grid spans the spec's declared parameters, every
// point matches the closed form, and undeclared axes are rejected.
func TestSweepInlineArchitecture(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Architecture: json.RawMessage(inlineSpec),
		Axes: []Axis{
			{Name: "period", Values: []int64{500, 700}},
			{Name: "work", Values: []int64{50, 200}},
		},
		Options: SweepOptions{Workers: 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d %s", resp.StatusCode, errorCode(t, resp))
	}
	j := decodeBody[Job](t, resp)
	if j.Scenario != "wiregrid" || j.Total != 4 {
		t.Fatalf("job %+v", j)
	}
	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "done" {
		t.Fatalf("job settled as %q: %s", jr.State, jr.Error)
	}
	if len(jr.Points) != 4 {
		t.Fatalf("%d points", len(jr.Points))
	}
	for _, p := range jr.Points {
		if p.Error != "" || p.Result == nil {
			t.Fatalf("point %+v failed", p)
		}
		want := inlineFinal(p.Params["period"], p.Params["work"])
		if p.Result.FinalTimeNs != want {
			t.Fatalf("point %v: final %d, want %d", p.Params, p.Result.FinalTimeNs, want)
		}
	}

	resp = postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Architecture: json.RawMessage(inlineSpec),
		Axes:         []Axis{{Name: "phase", Values: []int64{1, 2}}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("undeclared axis: status %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeInvalidAxes {
		t.Fatalf("undeclared axis: code %q", code)
	}
}

// The optimizer endpoint returns the brute-force front while simulating
// fewer points, and rejects malformed requests with stable codes.
func TestOptimizeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	exh := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Architecture: json.RawMessage(inlineSpec),
		Objective:    "final_time",
		Options:      OptimizeOptions{Exhaustive: true, Workers: 2},
	})
	if exh.StatusCode != http.StatusOK {
		t.Fatalf("exhaustive: status %d %s", exh.StatusCode, errorCode(t, exh))
	}
	want := decodeBody[OptimizeResponse](t, exh)
	if !want.Exhaustive || want.Simulated != 32 || len(want.Front) != 8 {
		t.Fatalf("exhaustive response %+v", want)
	}

	resp := postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Architecture: json.RawMessage(inlineSpec),
		Objective:    "final_time",
		Options:      OptimizeOptions{Workers: 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surrogate: status %d %s", resp.StatusCode, errorCode(t, resp))
	}
	got := decodeBody[OptimizeResponse](t, resp)
	if got.Architecture != "wiregrid" || got.Objective != "final_time" {
		t.Fatalf("response %+v", got)
	}
	if !got.Converged || got.Exhaustive || got.Simulated >= want.Simulated {
		t.Fatalf("surrogate run: %+v", got)
	}
	if len(got.Front) != len(want.Front) {
		t.Fatalf("front %d points, want %d", len(got.Front), len(want.Front))
	}
	for i := range got.Front {
		g, w := got.Front[i], want.Front[i]
		if g.Index != w.Index || g.Objective != w.Objective || g.Params["work"] != 50 {
			t.Fatalf("front[%d] = %+v, want %+v", i, g, w)
		}
	}

	// Constrained: the budget cuts the feasible set analytically.
	resp = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Architecture: json.RawMessage(inlineSpec),
		Objective:    "final_time",
		Constraints:  []OptimizeConstraint{{Metric: "power", Max: 300}},
		Options:      OptimizeOptions{Workers: 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("constrained: status %d", resp.StatusCode)
	}
	if c := decodeBody[OptimizeResponse](t, resp); c.Feasible >= c.GridPoints || c.Feasible == 0 {
		t.Fatalf("power budget did not cut the grid: %+v", c)
	}

	bad := []struct {
		name string
		req  OptimizeRequest
		code string
	}{
		{"missing architecture", OptimizeRequest{Objective: "final_time"}, CodeInvalidArchitecture},
		{"unknown objective", OptimizeRequest{
			Architecture: json.RawMessage(inlineSpec), Objective: "latency_p99"}, CodeInvalidObjective},
		{"unknown constraint metric", OptimizeRequest{
			Architecture: json.RawMessage(inlineSpec),
			Constraints:  []OptimizeConstraint{{Metric: "thermals", Max: 1}}}, CodeInvalidConstraint},
		{"future version", OptimizeRequest{
			Architecture: json.RawMessage(`{"version": 7, "name": "x"}`)}, CodeUnsupportedVersion},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/optimize", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if code := errorCode(t, resp); code != tc.code {
				t.Fatalf("code %q, want %q", code, tc.code)
			}
		})
	}

	// A constraint on a metric no parameter costs is unenforceable.
	noPower := `{
	  "version": 1, "name": "nopower",
	  "parameters": [{"name": "work", "default": 50, "values": [50, 100]}],
	  "channels": [{"name": "in", "kind": "rendezvous"}, {"name": "out", "kind": "rendezvous"}],
	  "functions": [{"name": "F", "body": [
	    {"read": "in"},
	    {"exec": {"cost": {"kind": "fixed", "ops": "$work"}}},
	    {"write": "out"}]}],
	  "resources": [{"name": "P", "kind": "processor", "ops_per_sec": 1e9}],
	  "mapping": [{"resource": "P", "functions": ["F"]}],
	  "sources": [{"name": "s", "channel": "in", "count": 5}],
	  "sinks": [{"name": "k", "channel": "out"}]}`
	resp = postJSON(t, ts.URL+"/v1/optimize", OptimizeRequest{
		Architecture: json.RawMessage(noPower),
		Constraints:  []OptimizeConstraint{{Metric: "power", Max: 10}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uncosted constraint: status %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeInvalidConstraint {
		t.Fatalf("uncosted constraint: code %q", code)
	}

	// The design space is bounded like a sweep grid.
	_, small := newTestServer(t, Config{MaxGridPoints: 4})
	resp = postJSON(t, small.URL+"/v1/optimize", OptimizeRequest{
		Architecture: json.RawMessage(inlineSpec),
	})
	if code := errorCode(t, resp); code != CodeGridTooLarge {
		t.Fatalf("oversize design space: code %q", code)
	}
}
