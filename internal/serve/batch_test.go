package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// A batched sweep job: the request opts in with options.batch_width, the
// job's terminal stats report the batch counters, and /metrics exposes
// the accumulated batch occupancy.
func TestSweepJobBatched(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "pipeline",
		Axes: []Axis{
			{Name: "tokens", Values: []int64{20, 40}},
			{Name: "period", Values: []int64{500, 800, 1100}},
		},
		Params:  map[string]int64{"xsize": 5},
		Options: SweepOptions{Workers: 2, BatchWidth: 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	j := decodeBody[Job](t, resp)

	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "done" {
		t.Fatalf("job settled as %q (err %q)", jr.State, jr.Error)
	}
	if jr.Stats == nil || jr.Stats.Failed != 0 {
		t.Fatalf("stats %+v", jr.Stats)
	}
	// One structural shape, 6 points at width 4: chunks of 4 and 2.
	if jr.Stats.Batches != 2 || jr.Stats.BatchedPoints != 6 {
		t.Fatalf("batches=%d batched_points=%d, want 2/6", jr.Stats.Batches, jr.Stats.BatchedPoints)
	}
	if want := 6.0 / 8.0; jr.Stats.BatchOccupancy != want {
		t.Fatalf("occupancy %v, want %v", jr.Stats.BatchOccupancy, want)
	}
	for _, p := range jr.Points {
		if p.Error != "" || p.Result == nil || p.Result.FinalTimeNs == 0 {
			t.Fatalf("bad point %+v", p)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"dyncomp_serve_sweep_batches_total 2\n",
		"dyncomp_serve_sweep_batch_points_total 6\n",
		"dyncomp_serve_sweep_batch_lanes_total 8\n",
		"dyncomp_serve_sweep_batch_occupancy 0.7500\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", strings.TrimSpace(want), body)
		}
	}
}

// The server-wide default width applies when a request does not set
// options.batch_width; a negative width is a client error.
func TestSweepJobBatchWidthDefaultAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{SweepBatchWidth: 3})
	req := SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "seed", Values: []int64{1, 2, 3, 4, 5, 6}}},
		Params:   map[string]int64{"tokens": 20},
	}
	resp := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	j := decodeBody[Job](t, resp)
	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "done" {
		t.Fatalf("job settled as %q (err %q)", jr.State, jr.Error)
	}
	if jr.Stats.Batches != 2 || jr.Stats.BatchedPoints != 6 || jr.Stats.BatchOccupancy != 1.0 {
		t.Fatalf("server-default width unused: %+v", jr.Stats)
	}

	req.Options.BatchWidth = -1
	resp = postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative batch_width: status %d", resp.StatusCode)
	}
	if code := errorCode(t, resp); code != CodeBadJSON {
		t.Fatalf("negative batch_width: code %q", code)
	}
}
