package serve

// The wire types in this file deliberately duplicate the library's
// result/stats structs instead of marshalling them directly: the HTTP
// schema is a published contract (docs/SERVING.md, pinned by
// codec_test.go) and must not shift when an internal struct gains or
// renames a field. The conversion funcs at the bottom are the single
// place the two worlds meet.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dyncomp/internal/engine"
	"dyncomp/internal/sweep"
)

// maxBodyBytes bounds every decoded request body; the grids and option
// sets this API accepts are tiny, so anything larger is a client error.
const maxBodyBytes = 1 << 20

// RunOptions is the wire form of the engine options a caller may set on
// a single run. It maps onto engine.Options; fields an engine has no
// use for are ignored by it, exactly as in the library.
type RunOptions struct {
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion).
	LimitNs int64 `json:"limit_ns,omitempty"`
	// IterLimit bounds the evolution to iterations [0, IterLimit).
	IterLimit int `json:"iter_limit,omitempty"`
	// WindowK is the adaptive engine's fixed steady-state confirmation
	// window; 0 selects its confidence-driven detector.
	WindowK int `json:"window_k,omitempty"`
	// Confidence is the adaptive engine's confidence-detector threshold,
	// read when WindowK is 0 (0: the engine default).
	Confidence float64 `json:"confidence,omitempty"`
	// Group names the functions the hybrid engine abstracts; empty
	// selects the scenario's canonical group.
	Group []string `json:"group,omitempty"`
	// Reduce prunes value-redundant arcs from derived graphs.
	Reduce bool `json:"reduce,omitempty"`
}

// RunRequest is the body of POST /v1/run: one engine × model
// evaluation. The model is either a registered scenario by name or an
// inline JSON architecture (the two are mutually exclusive). Params
// supplies the model's named integer parameters (absent names fall
// back to defaults, unknown names are rejected).
type RunRequest struct {
	Engine   string `json:"engine,omitempty"` // default "equivalent"
	Scenario string `json:"scenario,omitempty"`
	// Architecture is an inline architecture spec in the open JSON
	// model format (docs/MODEL_FORMAT.md, internal/archjson version 1),
	// validated and built through the same model.Validate path as the
	// compiled-in scenarios.
	Architecture json.RawMessage  `json:"architecture,omitempty"`
	Params       map[string]int64 `json:"params,omitempty"`
	Options      RunOptions       `json:"options"`
}

// EngineResult is the wire form of a completed run, mirroring
// engine.Result field for field (minus the trace, which is not served).
type EngineResult struct {
	Activations int64 `json:"activations"`
	Events      int64 `json:"events"`
	FinalTimeNs int64 `json:"final_time_ns"`
	WallNs      int64 `json:"wall_ns"`
	Iterations  int   `json:"iterations,omitempty"`
	GraphNodes  int   `json:"graph_nodes,omitempty"`
	Switches    int   `json:"switches,omitempty"`
	Fallbacks   int   `json:"fallbacks,omitempty"`
}

// CacheStats is a snapshot of the server's process-wide derivation
// cache: Misses counts derivations actually performed (== distinct
// structural shapes requested), Hits requests served by rebinding an
// existing template.
type CacheStats struct {
	Shapes int   `json:"shapes"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// RunResponse is the body of a successful POST /v1/run. Scenario names
// the registered scenario that ran; Architecture the inline spec (by
// its declared name) — exactly one of the two is set.
type RunResponse struct {
	Engine       string       `json:"engine"`
	Scenario     string       `json:"scenario,omitempty"`
	Architecture string       `json:"architecture,omitempty"`
	Result       EngineResult `json:"result"`
	Cache        CacheStats   `json:"cache"`
}

// Axis is one dimension of a sweep grid on the wire.
type Axis struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// SweepOptions is the wire form of the per-job sweep configuration.
type SweepOptions struct {
	// Workers is the per-job worker-pool size (0: the server default).
	Workers int `json:"workers,omitempty"`
	// WindowK, Confidence, Group, Reduce and LimitNs are the per-point
	// engine options, as in RunOptions.
	WindowK    int      `json:"window_k,omitempty"`
	Confidence float64  `json:"confidence,omitempty"`
	Group      []string `json:"group,omitempty"`
	Reduce     bool     `json:"reduce,omitempty"`
	LimitNs    int64    `json:"limit_ns,omitempty"`
	// Baseline pairs every point with a reference-executor run and
	// fills the per-point event ratio and speed-up.
	Baseline bool `json:"baseline,omitempty"`
	// BatchWidth groups structurally identical grid points into batched
	// lane evaluations of up to this many points (engines without the
	// capability fall back per point). 0 selects the server default;
	// negative is rejected.
	BatchWidth int `json:"batch_width,omitempty"`
	// SampleTolerance, when positive, enables surrogate-guided sampling:
	// only an actively chosen subset of the grid is simulated exactly
	// and the rest is predicted within this relative tolerance, flagged
	// per point. Negative is rejected; distributed chunk evaluation
	// (POST /v1/chunks) rejects sampling outright.
	SampleTolerance float64 `json:"sample_tolerance,omitempty"`
	// SampleBudget caps the exactly simulated points of a sampled sweep
	// (0: no cap; negative rejected).
	SampleBudget int `json:"sample_budget,omitempty"`
	// SampleVerify re-simulates every predicted point after convergence,
	// replaces the predictions with the exact metrics and reports the
	// observed error per point and in the stats.
	SampleVerify bool `json:"sample_verify,omitempty"`
}

// SweepRequest is the body of POST /v1/sweeps: an asynchronous grid
// evaluation of a registered scenario or an inline JSON architecture
// (mutually exclusive, as in RunRequest; axes over an inline spec must
// name its declared parameters). Axes spans the grid; Params fixes
// additional parameters that are not swept (an axis of the same name
// wins).
type SweepRequest struct {
	Engine       string           `json:"engine,omitempty"` // default "equivalent"
	Scenario     string           `json:"scenario,omitempty"`
	Architecture json.RawMessage  `json:"architecture,omitempty"`
	Axes         []Axis           `json:"axes"`
	Params       map[string]int64 `json:"params,omitempty"`
	Options      SweepOptions     `json:"options"`
}

// Job is the wire form of a sweep job's lifecycle state, returned by
// POST /v1/sweeps (202), GET /v1/sweeps and embedded in JobResult.
// State is one of "queued", "running", "cancelling", "done", "failed",
// "cancelled"; Done/Total report point-level progress.
type Job struct {
	ID       string     `json:"id"`
	State    string     `json:"state"`
	Engine   string     `json:"engine"`
	Scenario string     `json:"scenario"`
	Done     int        `json:"done"`
	Total    int        `json:"total"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// Aggregate is the wire form of sweep.Aggregate.
type Aggregate struct {
	N       int     `json:"n"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Geomean float64 `json:"geomean"`
}

// SweepStats is the wire form of sweep.Stats.
type SweepStats struct {
	Points         int     `json:"points"`
	Failed         int     `json:"failed"`
	Shapes         int     `json:"shapes"`
	DeriveCalls    int64   `json:"derive_calls"`
	CacheHits      int64   `json:"cache_hits"`
	WallNs         int64   `json:"wall_ns"`
	Batches        int     `json:"batches,omitempty"`
	BatchedPoints  int     `json:"batched_points,omitempty"`
	BatchOccupancy float64 `json:"batch_occupancy,omitempty"`
	// SimulatedPoints / PredictedPoints split a sampled sweep's grid;
	// MaxPredError is the worst prediction error bound — or, under
	// sample_verify, the worst observed error.
	SimulatedPoints int        `json:"simulated_points,omitempty"`
	PredictedPoints int        `json:"predicted_points,omitempty"`
	MaxPredError    float64    `json:"max_pred_error,omitempty"`
	SpeedUp         *Aggregate `json:"speed_up,omitempty"`
	EventRatio      *Aggregate `json:"event_ratio,omitempty"`
}

// SweepPoint is the wire form of one evaluated grid point.
type SweepPoint struct {
	Params     map[string]int64 `json:"params"`
	Result     *EngineResult    `json:"result,omitempty"`
	EventRatio float64          `json:"event_ratio,omitempty"`
	SpeedUp    float64          `json:"speed_up,omitempty"`
	// Source flags how a sampled sweep obtained this point ("simulated"
	// or "predicted"); empty in exhaustive sweeps. PredBound is the
	// surrogate's relative error bound on a predicted point,
	// PredObserved the observed error under sample_verify.
	Source       string  `json:"source,omitempty"`
	PredBound    float64 `json:"pred_bound,omitempty"`
	PredObserved float64 `json:"pred_observed,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// JobResult is the body of GET /v1/sweeps/{id}: the job plus — once the
// job reached a terminal state — the sweep statistics and per-point
// results (also the partial ones of a cancelled job).
type JobResult struct {
	Job
	Stats  *SweepStats  `json:"stats,omitempty"`
	Points []SweepPoint `json:"points,omitempty"`
}

// Error is the uniform error envelope: a stable machine-readable code
// plus a human-readable message.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse wraps every non-2xx JSON body.
type ErrorResponse struct {
	Err Error `json:"error"`
}

// Error codes returned by the API.
const (
	CodeBadJSON         = "bad_json"
	CodeUnknownEngine   = "unknown_engine"
	CodeUnknownScenario = "unknown_scenario"
	CodeUnknownParam    = "unknown_param"
	CodeInvalidAxes     = "invalid_axes"
	CodeInvalidSample   = "invalid_sample"
	CodeInvalidIndices  = "invalid_indices"
	CodeGridTooLarge    = "grid_too_large"
	CodeMissingGroup    = "missing_group"
	CodeRunFailed       = "run_failed"
	CodeJobNotFound     = "job_not_found"
	CodeJobTerminal     = "job_terminal"
	CodeQueueFull       = "queue_full"
	CodeUnavailable     = "unavailable"
	CodeBodyTooLarge    = "body_too_large"
	// Inline-architecture codes: a spec that fails decoding, validation
	// or building answers invalid_architecture; a spec with a version
	// field this server does not speak answers unsupported_version (so a
	// newer client learns the format gap, not a generic validation
	// failure).
	CodeInvalidArchitecture = "invalid_architecture"
	CodeUnsupportedVersion  = "unsupported_version"
	// Optimizer codes: unknown objective metric / malformed constraint
	// on POST /v1/optimize.
	CodeInvalidObjective  = "invalid_objective"
	CodeInvalidConstraint = "invalid_constraint"
	// Admission-control codes (docs/OPERATIONS.md): a missing or unknown
	// bearer token answers unauthorized; a caller over its concurrent-job
	// or grid-point quota answers quota_exceeded with Retry-After; a
	// server past its in-flight bound sheds with overloaded and
	// Retry-After; a request that outran -request-timeout answers
	// deadline_exceeded; a recovered handler panic answers internal.
	CodeUnauthorized     = "unauthorized"
	CodeQuotaExceeded    = "quota_exceeded"
	CodeOverloaded       = "overloaded"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeInternal         = "internal"
)

// engineOptions maps wire run options onto the unified engine options.
func (o RunOptions) engineOptions(group []string) engine.Options {
	opts := engine.Options{
		LimitNs:       o.LimitNs,
		IterLimit:     o.IterLimit,
		WindowK:       o.WindowK,
		Confidence:    o.Confidence,
		AbstractGroup: group,
	}
	opts.Derive.Reduce = o.Reduce
	return opts
}

// resultJSON converts a unified engine result to its wire form.
func resultJSON(r *engine.Result) EngineResult {
	return EngineResult{
		Activations: r.Activations,
		Events:      r.Events,
		FinalTimeNs: r.FinalTimeNs,
		WallNs:      r.WallNs,
		Iterations:  r.Iterations,
		GraphNodes:  r.GraphNodes,
		Switches:    r.Switches,
		Fallbacks:   r.Fallbacks,
	}
}

// sweepAxes converts and validates wire axes.
func sweepAxes(axes []Axis) ([]sweep.Axis, error) {
	if len(axes) == 0 {
		return nil, fmt.Errorf("no axes")
	}
	out := make([]sweep.Axis, len(axes))
	seen := map[string]bool{}
	for i, ax := range axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("axis %d has no name", i)
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("axis %q has no values", ax.Name)
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		out[i] = sweep.Axis{Name: ax.Name, Values: ax.Values}
	}
	return out, nil
}

// statsJSON converts sweep statistics to their wire form.
func statsJSON(st sweep.Stats) *SweepStats {
	out := &SweepStats{
		Points:         st.Points,
		Failed:         st.Failed,
		Shapes:         st.Shapes,
		DeriveCalls:    st.DeriveCalls,
		CacheHits:      st.CacheHits,
		WallNs:         st.Wall.Nanoseconds(),
		Batches:        st.Batches,
		BatchedPoints:  st.BatchedPoints,
		BatchOccupancy: st.BatchOccupancy,

		SimulatedPoints: st.SimulatedPoints,
		PredictedPoints: st.PredictedPoints,
		MaxPredError:    st.MaxPredError,
	}
	if st.SpeedUp.N > 0 {
		out.SpeedUp = aggregateJSON(st.SpeedUp)
	}
	if st.EventRatio.N > 0 {
		out.EventRatio = aggregateJSON(st.EventRatio)
	}
	return out
}

func aggregateJSON(a sweep.Aggregate) *Aggregate {
	return &Aggregate{N: a.N, Min: a.Min, Max: a.Max, Mean: a.Mean, Geomean: a.Geomean}
}

// pointJSON converts one evaluated grid point to its wire form.
func pointJSON(pr sweep.PointResult) SweepPoint {
	sp := SweepPoint{Params: map[string]int64{}}
	for i, n := range pr.Point.Names {
		sp.Params[n] = pr.Point.Values[i]
	}
	if pr.Err != nil {
		sp.Error = pr.Err.Error()
		return sp
	}
	sp.Result = &EngineResult{
		Activations: pr.Run.Activations,
		Events:      pr.Run.Events,
		FinalTimeNs: pr.Run.FinalTimeNs,
		WallNs:      pr.Run.Wall.Nanoseconds(),
		Iterations:  pr.Run.Iterations,
		GraphNodes:  pr.Run.GraphNodes,
		Switches:    pr.Run.Switches,
		Fallbacks:   pr.Run.Fallbacks,
	}
	sp.EventRatio = pr.EventRatio
	sp.SpeedUp = pr.SpeedUp
	sp.Source = pr.Source
	sp.PredBound = pr.PredBound
	sp.PredObserved = pr.PredObserved
	return sp
}

// decodeJSON strictly decodes a bounded request body into dst: unknown
// fields and trailing garbage answer 400 bad_json, an oversized body
// 413 body_too_large (so a client learns the size limit instead of
// "malformed JSON").
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *RequestError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return requestErrorf(http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
		}
		return requestErrorf(http.StatusBadRequest, CodeBadJSON, "decoding request: %v", err)
	}
	if dec.More() {
		return requestErrorf(http.StatusBadRequest, CodeBadJSON, "trailing data after JSON body")
	}
	return nil
}

// writeJSON writes a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Err: Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
