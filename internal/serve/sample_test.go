package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// sampleAxes spans the source-dominated regime of the didactic chain —
// a surface the surrogate can learn (see internal/surrogate's tests).
func sampleAxes(n int) []Axis {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(1100 + 40*i)
	}
	return []Axis{
		{Name: "period", Values: vals},
		{Name: "tokens", Values: []int64{250}},
		{Name: "seed", Values: []int64{7}},
	}
}

// A sampled sweep job end to end: options.sample_* reach the driver,
// the terminal stats report the simulated/predicted split, every wire
// point carries its source flag, and /metrics accumulates the predicted
// points and the prediction-error histogram.
func TestSweepJobSampled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/sweeps", SweepRequest{
		Scenario: "chain",
		Axes:     sampleAxes(24),
		Params:   map[string]int64{"stages": 2},
		Options:  SweepOptions{Workers: 2, SampleTolerance: 0.02, SampleVerify: true},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	j := decodeBody[Job](t, resp)
	jr := waitJob(t, ts.URL, j.ID, terminal)
	if jr.State != "done" {
		t.Fatalf("job settled as %q (err %q)", jr.State, jr.Error)
	}
	st := jr.Stats
	if st == nil || st.SimulatedPoints+st.PredictedPoints != st.Points {
		t.Fatalf("stats %+v", st)
	}
	if st.PredictedPoints == 0 {
		t.Fatalf("no predictions on a smooth grid: %+v", st)
	}
	if st.MaxPredError <= 0 || st.MaxPredError > 0.02 {
		t.Fatalf("max_pred_error %g outside (0, tolerance]", st.MaxPredError)
	}
	predicted := 0
	for _, p := range jr.Points {
		switch p.Source {
		case "simulated":
			if p.Result == nil || p.Result.FinalTimeNs == 0 {
				t.Fatalf("bad simulated point %+v", p)
			}
		case "predicted":
			predicted++
			if p.Result == nil || p.Result.FinalTimeNs == 0 || p.PredBound <= 0 {
				t.Fatalf("bad predicted point %+v", p)
			}
		default:
			t.Fatalf("point without source: %+v", p)
		}
	}
	if predicted != st.PredictedPoints {
		t.Fatalf("flagged %d predicted points, stats say %d", predicted, st.PredictedPoints)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		fmt.Sprintf("dyncomp_serve_sweep_predicted_points_total %d\n", st.PredictedPoints),
		fmt.Sprintf("dyncomp_serve_sweep_simulated_points_total %d\n", st.SimulatedPoints),
		fmt.Sprintf("dyncomp_serve_sweep_pred_error_count %d\n", st.PredictedPoints),
		`dyncomp_serve_sweep_pred_error_bucket{le="+Inf"}`,
		"dyncomp_serve_sweep_pred_error_sum ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", strings.TrimSpace(want))
		}
	}
}

// Negative sampling knobs are client errors with a stable code.
func TestSampleOptionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SweepRequest{
		Scenario: "didactic",
		Axes:     []Axis{{Name: "seed", Values: []int64{1, 2}}},
		Params:   map[string]int64{"tokens": 20},
	}
	req.Options.SampleTolerance = -0.5
	resp := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, resp) != CodeInvalidSample {
		t.Fatalf("negative tolerance: status %d", resp.StatusCode)
	}
	req.Options.SampleTolerance = 0.01
	req.Options.SampleBudget = -1
	resp = postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, resp) != CodeInvalidSample {
		t.Fatalf("negative budget: status %d", resp.StatusCode)
	}
}

// The distributed chunk endpoint rejects sampling: a shard cannot fit a
// grid-global surrogate.
func TestChunkRejectsSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postJSON(t, ts.URL+"/v1/chunks", ChunkRequest{
		SweepRequest: SweepRequest{
			Scenario: "didactic",
			Axes:     []Axis{{Name: "seed", Values: []int64{1, 2, 3}}},
			Params:   map[string]int64{"tokens": 20},
			Options:  SweepOptions{SampleTolerance: 0.01},
		},
		Indices: []int{0, 1},
	})
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, resp) != CodeInvalidSample {
		t.Fatalf("chunk with sampling: status %d", resp.StatusCode)
	}
}
