package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/zoo"
)

// RequestError carries a validation failure to the HTTP layer: the
// status to answer with, a stable machine-readable code and a
// human-readable message. It is exported because the distributed
// coordinator (internal/shard) compiles the same wire requests through
// CompileSweep and relays these verbatim to its own callers.
type RequestError struct {
	Status int
	Code   string
	Msg    string
}

func (e *RequestError) Error() string { return e.Msg }

func requestErrorf(status int, code, format string, args ...any) *RequestError {
	return &RequestError{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// resolve validates the engine name, scenario name and parameters shared
// by /v1/run and /v1/sweeps, returning the resolved registry entries.
func resolve(engineName, scenarioName string, params map[string]int64) (engine.Engine, zoo.Scenario, zoo.ParamMap, *RequestError) {
	if engineName == "" {
		engineName = "equivalent"
	}
	eng, err := engine.Lookup(engineName)
	if err != nil {
		return nil, zoo.Scenario{}, nil, requestErrorf(http.StatusBadRequest, CodeUnknownEngine, "%v", err)
	}
	sc, err := zoo.LookupScenario(scenarioName)
	if err != nil {
		return nil, zoo.Scenario{}, nil, requestErrorf(http.StatusBadRequest, CodeUnknownScenario, "%v", err)
	}
	pm := zoo.ParamMap(params)
	if err := sc.CheckParams(pm); err != nil {
		return nil, zoo.Scenario{}, nil, requestErrorf(http.StatusBadRequest, CodeUnknownParam, "%v", err)
	}
	return eng, sc, pm, nil
}

// hybridGroup resolves the abstraction group for the hybrid engine: the
// request's explicit group wins, then the scenario's canonical group;
// scenarios without one (e.g. randomized structures) require the
// explicit group.
func hybridGroup(eng engine.Engine, sc zoo.Scenario, requested []string, p zoo.Params) ([]string, *RequestError) {
	if eng.Name() != "hybrid" {
		return requested, nil
	}
	if len(requested) > 0 {
		return requested, nil
	}
	if sc.HybridGroup == nil {
		return nil, requestErrorf(http.StatusBadRequest, CodeMissingGroup,
			"scenario %q has no canonical hybrid group; set options.group", sc.Name)
	}
	return sc.HybridGroup(p), nil
}

// buildArchitecture runs a scenario builder, converting its panics —
// the model layer uses them for invalid configurations — into errors so
// one bad request cannot kill the process.
func buildArchitecture(sc zoo.Scenario, p zoo.Params) (a *model.Architecture, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, err = nil, fmt.Errorf("scenario %q: %v", sc.Name, r)
		}
	}()
	a = sc.Build(p)
	if a == nil {
		return nil, fmt.Errorf("scenario %q built no architecture", sc.Name)
	}
	return a, nil
}

// runEngine executes one engine run with panic confinement, mirroring
// what the sweep worker pool does per point.
func runEngine(ctx context.Context, eng engine.Engine, a *model.Architecture, opts engine.Options) (res *engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("engine %q: panic: %v", eng.Name(), r)
		}
	}()
	return eng.Run(ctx, a, opts)
}

// handleRun serves POST /v1/run: decode, resolve against the two
// registries, evaluate synchronously on the caller's request context
// (a dropped connection cancels the run at the engine's granularity),
// and answer with the unified result plus a cache snapshot.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if aerr := decodeJSON(w, r, &req); aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	if hasArchitecture(req.Architecture) {
		s.handleRunInline(w, r, req)
		return
	}
	eng, sc, pm, aerr := resolve(req.Engine, req.Scenario, req.Params)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	group, aerr := hybridGroup(eng, sc, req.Options.Group, pm)
	if aerr != nil {
		writeError(w, aerr.Status, aerr.Code, "%s", aerr.Msg)
		return
	}
	a, err := buildArchitecture(sc, pm)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, CodeRunFailed, "%v", err)
		return
	}
	if !s.admitPoints(w, r, 1) {
		return
	}

	opts := req.Options.engineOptions(group)
	opts.Cache = s.cache
	res, err := runEngine(r.Context(), eng, a, opts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, CodeDeadlineExceeded,
				"run exceeded the request deadline")
			return
		}
		if errors.Is(err, context.Canceled) {
			// The caller went away; there is nobody to answer.
			return
		}
		writeError(w, http.StatusUnprocessableEntity, CodeRunFailed, "%v", err)
		return
	}
	s.metrics.inc(metricRuns, fmt.Sprintf(`engine=%q`, eng.Name()))
	hits, misses := s.cache.Stats()
	writeJSON(w, http.StatusOK, RunResponse{
		Engine:   eng.Name(),
		Scenario: sc.Name,
		Result:   resultJSON(res),
		Cache:    CacheStats{Shapes: s.cache.Shapes(), Hits: hits, Misses: misses},
	})
}
