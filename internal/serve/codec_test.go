package serve

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"dyncomp/internal/engine"
	"dyncomp/internal/sweep"
)

// Every wire type must survive a marshal/unmarshal round trip unchanged
// — the schemas in docs/SERVING.md are exactly these structs.
func TestWireTypesRoundTrip(t *testing.T) {
	started := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	finished := started.Add(3 * time.Second)
	cases := []struct {
		name string
		v    any
	}{
		{"run request", &RunRequest{
			Engine:   "hybrid",
			Scenario: "didactic",
			Params:   map[string]int64{"tokens": 1000, "period": 1200},
			Options: RunOptions{
				LimitNs:   5_000_000,
				IterLimit: 100,
				WindowK:   8,
				Group:     []string{"F3", "F4"},
				Reduce:    true,
			},
		}},
		{"run request minimal", &RunRequest{Scenario: "pipeline"}},
		{"run response", &RunResponse{
			Engine:   "equivalent",
			Scenario: "didactic",
			Result: EngineResult{
				Activations: 12, Events: 34, FinalTimeNs: 56, WallNs: 78,
				Iterations: 9, GraphNodes: 10, Switches: 2, Fallbacks: 1,
			},
			Cache: CacheStats{Shapes: 3, Hits: 5, Misses: 3},
		}},
		{"sweep request", &SweepRequest{
			Engine:   "adaptive",
			Scenario: "pipeline",
			Axes: []Axis{
				{Name: "xsize", Values: []int64{6, 10, 20}},
				{Name: "tokens", Values: []int64{1000}},
			},
			Params: map[string]int64{"period": 600},
			Options: SweepOptions{
				Workers: 4, WindowK: 16, Confidence: 0.95, Reduce: true, LimitNs: 7, Baseline: true,
				BatchWidth: 8, SampleTolerance: 0.01, SampleBudget: 40, SampleVerify: true,
			},
		}},
		{"job", &Job{
			ID: "job-000042", State: "running", Engine: "equivalent",
			Scenario: "lte", Done: 3, Total: 36, Created: started, Started: &started,
		}},
		{"job result", &JobResult{
			Job: Job{
				ID: "job-000042", State: "done", Engine: "equivalent", Scenario: "lte",
				Done: 2, Total: 2, Created: started, Started: &started, Finished: &finished,
			},
			Stats: &SweepStats{
				Points: 2, Shapes: 1, DeriveCalls: 1, CacheHits: 1, WallNs: 9,
				Batches: 1, BatchedPoints: 2, BatchOccupancy: 0.5,
				SimulatedPoints: 1, PredictedPoints: 1, MaxPredError: 0.004,
				SpeedUp: &Aggregate{N: 2, Min: 1, Max: 3, Mean: 2, Geomean: 1.7},
			},
			Points: []SweepPoint{
				{Params: map[string]int64{"symbols": 1000}, Result: &EngineResult{FinalTimeNs: 5}, SpeedUp: 2.5, Source: "simulated"},
				{Params: map[string]int64{"symbols": 1500}, Result: &EngineResult{FinalTimeNs: 6},
					Source: "predicted", PredBound: 0.008, PredObserved: 0.004},
				{Params: map[string]int64{"symbols": 2000}, Error: "boom"},
			},
		}},
		{"error response", &ErrorResponse{Err: Error{Code: CodeUnknownEngine, Message: "no such engine"}}},
		{"health", &Health{Status: "ok", UptimeNs: 12345, JobsQueued: 1, JobsRunning: 2, CacheShapes: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			got := reflect.New(reflect.TypeOf(tc.v).Elem()).Interface()
			if err := json.Unmarshal(b, got); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tc.v, got) {
				t.Fatalf("round trip changed the value:\n in: %#v\nout: %#v\njson: %s", tc.v, got, b)
			}
		})
	}
}

// The documented field names are part of the API contract; a silently
// renamed JSON tag must fail this test, not a client.
func TestWireFieldNames(t *testing.T) {
	b, err := json.Marshal(RunResponse{
		Result: EngineResult{Iterations: 1, GraphNodes: 1, Switches: 1, Fallbacks: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	result, ok := m["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result object in %s", b)
	}
	for _, key := range []string{
		"activations", "events", "final_time_ns", "wall_ns",
		"iterations", "graph_nodes", "switches", "fallbacks",
	} {
		if _, ok := result[key]; !ok {
			t.Errorf("result field %q missing in %s", key, b)
		}
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache object in %s", b)
	}
	for _, key := range []string{"shapes", "hits", "misses"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("cache field %q missing in %s", key, b)
		}
	}
}

// The sampling knobs and result flags are part of the published schema
// too; pin their exact field names.
func TestSampleWireFieldNames(t *testing.T) {
	checkKeys := func(v any, keys ...string) {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		for _, key := range keys {
			if _, ok := m[key]; !ok {
				t.Errorf("field %q missing in %s", key, b)
			}
		}
	}
	checkKeys(SweepOptions{Confidence: 0.9, SampleTolerance: 0.01, SampleBudget: 4, SampleVerify: true},
		"confidence", "sample_tolerance", "sample_budget", "sample_verify")
	checkKeys(SweepStats{SimulatedPoints: 1, PredictedPoints: 2, MaxPredError: 0.5},
		"simulated_points", "predicted_points", "max_pred_error")
	checkKeys(SweepPoint{Source: "predicted", PredBound: 0.1, PredObserved: 0.05},
		"source", "pred_bound", "pred_observed")
	checkKeys(RunOptions{Confidence: 0.9}, "confidence")
}

// resultJSON and pointJSON must carry every engine-result field onto
// the wire.
func TestResultConversions(t *testing.T) {
	er := &engine.Result{
		Activations: 1, Events: 2, FinalTimeNs: 3, WallNs: 4,
		Iterations: 5, GraphNodes: 6, Switches: 7, Fallbacks: 8,
	}
	got := resultJSON(er)
	want := EngineResult{
		Activations: 1, Events: 2, FinalTimeNs: 3, WallNs: 4,
		Iterations: 5, GraphNodes: 6, Switches: 7, Fallbacks: 8,
	}
	if got != want {
		t.Fatalf("resultJSON = %+v, want %+v", got, want)
	}

	pr := sweep.PointResult{
		Point: sweep.Point{Names: []string{"a", "b"}, Values: []int64{1, 2}},
		Run: sweep.PointStats{
			Activations: 1, Events: 2, FinalTimeNs: 3, Iterations: 4,
			GraphNodes: 5, Switches: 6, Fallbacks: 7, Wall: 8 * time.Nanosecond,
		},
		EventRatio: 1.5,
		SpeedUp:    2.5,
	}
	sp := pointJSON(pr)
	if sp.Error != "" || sp.Result == nil {
		t.Fatalf("pointJSON = %+v", sp)
	}
	if sp.Params["a"] != 1 || sp.Params["b"] != 2 {
		t.Fatalf("params %+v", sp.Params)
	}
	if *sp.Result != (EngineResult{
		Activations: 1, Events: 2, FinalTimeNs: 3, WallNs: 8,
		Iterations: 4, GraphNodes: 5, Switches: 6, Fallbacks: 7,
	}) {
		t.Fatalf("point result %+v", *sp.Result)
	}
	if sp.EventRatio != 1.5 || sp.SpeedUp != 2.5 {
		t.Fatalf("ratios %+v", sp)
	}

	pr.Source = sweep.SourcePredicted
	pr.PredBound = 0.01
	pr.PredObserved = 0.002
	sp = pointJSON(pr)
	if sp.Source != "predicted" || sp.PredBound != 0.01 || sp.PredObserved != 0.002 {
		t.Fatalf("sampling fields lost: %+v", sp)
	}
}

// statsJSON maps sweep statistics onto the wire, omitting aggregates of
// sweeps without a baseline.
func TestStatsConversion(t *testing.T) {
	st := sweep.Stats{
		Points: 6, Failed: 1, Shapes: 2, DeriveCalls: 2, CacheHits: 4,
		Wall:    42 * time.Nanosecond,
		Batches: 2, BatchedPoints: 5, BatchOccupancy: 0.625,
		SimulatedPoints: 4, PredictedPoints: 2, MaxPredError: 0.003,
	}
	got := statsJSON(st)
	if got.Points != 6 || got.Failed != 1 || got.Shapes != 2 ||
		got.DeriveCalls != 2 || got.CacheHits != 4 || got.WallNs != 42 {
		t.Fatalf("statsJSON = %+v", got)
	}
	if got.Batches != 2 || got.BatchedPoints != 5 || got.BatchOccupancy != 0.625 {
		t.Fatalf("batch stats lost: %+v", got)
	}
	if got.SimulatedPoints != 4 || got.PredictedPoints != 2 || got.MaxPredError != 0.003 {
		t.Fatalf("sampling stats lost: %+v", got)
	}
	if got.SpeedUp != nil || got.EventRatio != nil {
		t.Fatal("aggregates present without baseline")
	}
	st.SpeedUp = sweep.Aggregate{N: 5, Min: 1, Max: 2, Mean: 1.5, Geomean: 1.4}
	if got := statsJSON(st); got.SpeedUp == nil || got.SpeedUp.N != 5 {
		t.Fatalf("speed-up aggregate lost: %+v", got.SpeedUp)
	}
}

// sweepAxes validates the wire grid.
func TestSweepAxesValidation(t *testing.T) {
	if _, err := sweepAxes(nil); err == nil {
		t.Error("empty axes accepted")
	}
	if _, err := sweepAxes([]Axis{{Values: []int64{1}}}); err == nil {
		t.Error("unnamed axis accepted")
	}
	if _, err := sweepAxes([]Axis{{Name: "a"}}); err == nil {
		t.Error("valueless axis accepted")
	}
	if _, err := sweepAxes([]Axis{
		{Name: "a", Values: []int64{1}}, {Name: "a", Values: []int64{2}},
	}); err == nil {
		t.Error("duplicate axis accepted")
	}
	axes, err := sweepAxes([]Axis{{Name: "a", Values: []int64{1, 2}}})
	if err != nil || len(axes) != 1 || axes[0].Name != "a" {
		t.Fatalf("valid axes rejected: %v %v", axes, err)
	}
}
