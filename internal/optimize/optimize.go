// Package optimize turns "evaluate my grid" into "find me a design":
// a Pareto design-space optimizer over an archjson architecture's
// declared parameter space. The objective is a sweep metric of the
// (max,+) evaluation (steady-state cycle mean or end-to-end final
// time); constraints are lumos-style area/power budgets evaluated
// analytically from the spec's per-parameter cost models, so
// infeasible designs are discarded *before* any simulation. The search
// is driven by the sampled sweep's surrogate as an acquisition model:
// fit the objective on the simulated subset, and simulate a candidate
// only while its optimistic bound (prediction minus uncertainty) keeps
// it Pareto-competitive with the exact points already simulated. The
// returned front is computed exclusively from exactly-simulated
// values — the surrogate decides where to *look*, never what to
// *report* — with per-point provenance (seed / refined / exhaustive)
// and an honest exhaustive fallback when the grid is unlearnable.
package optimize

import (
	"context"
	"fmt"
	"sort"

	"dyncomp/internal/archjson"
	"dyncomp/internal/derive"
	"dyncomp/internal/model"
	"dyncomp/internal/surrogate"
	"dyncomp/internal/sweep"
)

// Objective metrics.
const (
	// ObjectiveCycleMean minimizes steady-state time per iteration:
	// final time / iterations.
	ObjectiveCycleMean = "cycle_mean"
	// ObjectiveFinalTime minimizes the end-to-end evolution time.
	ObjectiveFinalTime = "final_time"
)

// Constraint metrics.
const (
	MetricArea  = "area"
	MetricPower = "power"
)

// Constraint is one platform budget: the named analytic cost metric
// must not exceed Max.
type Constraint struct {
	Metric string  // "area" | "power"
	Max    float64 // inclusive budget
}

// Point origins (Result provenance).
const (
	// OriginSeed marks a point simulated by the deterministic seed plan.
	OriginSeed = "seed"
	// OriginRefined marks a point the acquisition loop chose to simulate.
	OriginRefined = "refined"
	// OriginExhaustive marks a point simulated by the exhaustive sweep
	// (forced, or the fallback on an unlearnable grid).
	OriginExhaustive = "exhaustive"
)

// refineBatch matches the sampled sweep's refinement round size.
const refineBatch = 8

// Options configures one optimization run.
type Options struct {
	// Engine names the executor evaluating simulated points (empty:
	// sweep.DefaultEngine).
	Engine string
	// Workers sets the sweep worker-pool size (0: GOMAXPROCS).
	Workers int
	// BatchWidth enables batched same-shape lane evaluation, as in
	// sweep.Options.
	BatchWidth int
	// Objective selects the minimized metric (empty: ObjectiveCycleMean).
	Objective string
	// Constraints are the area/power budgets; a constraint on a metric
	// no parameter declares a cost model for is an error (the budget
	// would be unenforceable, not trivially satisfied).
	Constraints []Constraint
	// Budget caps the number of simulated points (0: no cap). An
	// exhausted budget returns the front of what was simulated, with
	// Converged false.
	Budget int
	// Exhaustive forces brute-force simulation of every feasible point —
	// the reference the surrogate-driven loop is tested against.
	Exhaustive bool
	// Group is the abstraction group for the hybrid engine (nil: the
	// spec's canonical group).
	Group []string
	// Cache supplies a shared structure-keyed derivation cache.
	Cache *derive.Cache
	// Progress, when set, observes (simulated, feasible) after every
	// simulation round.
	Progress func(simulated, feasible int)
}

// Point is one Pareto-optimal design, with exact simulated objective
// and analytic platform costs.
type Point struct {
	Index     int              `json:"index"` // row-major grid index
	Params    map[string]int64 `json:"params"`
	Objective float64          `json:"objective"`
	Area      float64          `json:"area,omitempty"`
	Power     float64          `json:"power,omitempty"`
	Origin    string           `json:"origin"` // seed | refined | exhaustive
	Round     int              `json:"round"`  // acquisition round that simulated it
}

// Result is the outcome of one optimization run.
type Result struct {
	Objective  string  `json:"objective"`
	Front      []Point `json:"front"`
	GridPoints int     `json:"grid_points"` // full design-space size
	Feasible   int     `json:"feasible"`    // points surviving the constraint filter
	Simulated  int     `json:"simulated"`   // exactly-evaluated points
	Converged  bool    `json:"converged"`   // acquisition ran out of competitive candidates
	Exhaustive bool    `json:"exhaustive"`  // brute force (forced or fallback)
}

// candidate is one feasible grid point's search state.
type candidate struct {
	idx    int // index into the feasible list
	pt     sweep.Point
	area   float64
	power  float64
	obj    float64 // exact objective once simulated
	origin string
	round  int
	done   bool
	failed bool // simulation failed; excluded from fit, dominance and front
}

// Run optimizes the spec's declared design space. The axes are the
// spec parameters declaring candidate values; parameters without
// values stay fixed at their defaults.
func Run(ctx context.Context, spec *archjson.Spec, opts Options) (*Result, error) {
	objective := opts.Objective
	if objective == "" {
		objective = ObjectiveCycleMean
	}
	if objective != ObjectiveCycleMean && objective != ObjectiveFinalTime {
		return nil, fmt.Errorf("optimize: unknown objective %q (want %q or %q)", objective, ObjectiveCycleMean, ObjectiveFinalTime)
	}
	var axes []sweep.Axis
	for i := range spec.Parameters {
		p := &spec.Parameters[i]
		if len(p.Values) > 0 {
			vals := append([]int64(nil), p.Values...)
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			axes = append(axes, sweep.Axis{Name: p.Name, Values: vals})
		}
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("optimize: architecture %q declares no parameter values to explore", spec.Name)
	}
	pts, err := sweep.Grid(axes)
	if err != nil {
		return nil, err
	}

	// Analytic constraint filter: evaluate the declared cost models per
	// point and drop designs over budget before any simulation.
	probe, err := spec.EvalCost(nil)
	if err != nil {
		return nil, err
	}
	for _, c := range opts.Constraints {
		switch c.Metric {
		case MetricArea:
			if !probe.HasArea {
				return nil, fmt.Errorf("optimize: area constraint, but no parameter of %q declares an area cost model", spec.Name)
			}
		case MetricPower:
			if !probe.HasPower {
				return nil, fmt.Errorf("optimize: power constraint, but no parameter of %q declares a power cost model", spec.Name)
			}
		default:
			return nil, fmt.Errorf("optimize: unknown constraint metric %q (want %q or %q)", c.Metric, MetricArea, MetricPower)
		}
	}
	var feasible []*candidate
	for _, pt := range pts {
		m, err := spec.EvalCost(pt)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, c := range opts.Constraints {
			v := m.Area
			if c.Metric == MetricPower {
				v = m.Power
			}
			ok = ok && v <= c.Max
		}
		if ok {
			feasible = append(feasible, &candidate{idx: len(feasible), pt: pt, area: m.Area, power: m.Power})
		}
	}
	res := &Result{
		Objective:  objective,
		GridPoints: len(pts),
		Feasible:   len(feasible),
	}
	if len(feasible) == 0 {
		res.Converged = true
		return res, nil
	}

	s := &search{
		ctx:       ctx,
		spec:      spec,
		opts:      opts,
		objective: objective,
		axes:      axes,
		useArea:   probe.HasArea,
		usePower:  probe.HasPower,
		feasible:  feasible,
		res:       res,
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	res.Front = s.front()
	return res, nil
}

type search struct {
	ctx       context.Context
	spec      *archjson.Spec
	opts      Options
	objective string
	axes      []sweep.Axis
	useArea   bool
	usePower  bool
	feasible  []*candidate
	round     int
	res       *Result
}

func (s *search) run() error {
	if s.opts.Exhaustive {
		s.res.Exhaustive = true
		if err := s.simulate(s.remaining(), OriginExhaustive); err != nil {
			return err
		}
		s.res.Converged = true
		return nil
	}
	dims := len(s.axes)
	seed := surrogate.SeedIndices(len(s.feasible), dims, s.opts.Budget)
	if err := s.simulate(seed, OriginSeed); err != nil {
		return err
	}
	for {
		if err := s.ctx.Err(); err != nil {
			return err
		}
		remaining := s.remaining()
		if len(remaining) == 0 {
			s.res.Converged = true
			return nil
		}
		model, err := s.fit()
		if err != nil {
			// Unlearnable (singular or undersized fit): be honest and
			// simulate everything left rather than report a guessed front.
			s.res.Exhaustive = true
			if err := s.simulate(remaining, OriginExhaustive); err != nil {
				return err
			}
			s.res.Converged = true
			return nil
		}
		// Acquisition: a candidate stays alive while its optimistic
		// objective (prediction minus uncertainty half-width) is not
		// Pareto-dominated by an exactly-simulated point. Ties on every
		// dimension do not dominate — an equal design is still on the
		// front.
		type scored struct {
			idx   int
			objLo float64
			hw    float64
		}
		var alive []scored
		for _, i := range remaining {
			c := s.feasible[i]
			v, hw := model.Predict(c.pt.Values)
			objLo := v - hw
			if !s.dominatedExactly(objLo, c) {
				alive = append(alive, scored{idx: i, objLo: objLo, hw: hw})
			}
		}
		if len(alive) == 0 {
			s.res.Converged = true
			return nil
		}
		n := refineBatch
		if s.opts.Budget > 0 {
			left := s.opts.Budget - s.res.Simulated
			if left <= 0 {
				return nil // budget exhausted before convergence
			}
			if n > left {
				n = left
			}
		}
		if n > len(alive) {
			n = len(alive)
		}
		// Most promising first: lowest optimistic objective, then the
		// most uncertain (largest half-width), then grid order for
		// determinism.
		sort.Slice(alive, func(a, b int) bool {
			if alive[a].objLo != alive[b].objLo {
				return alive[a].objLo < alive[b].objLo
			}
			if alive[a].hw != alive[b].hw {
				return alive[a].hw > alive[b].hw
			}
			return alive[a].idx < alive[b].idx
		})
		batch := make([]int, n)
		for i := range batch {
			batch[i] = alive[i].idx
		}
		s.round++
		if err := s.simulate(batch, OriginRefined); err != nil {
			return err
		}
	}
}

// remaining lists unsimulated feasible indices.
func (s *search) remaining() []int {
	var out []int
	for i, c := range s.feasible {
		if !c.done {
			out = append(out, i)
		}
	}
	return out
}

// fit trains the acquisition surrogate on the simulated objectives.
func (s *search) fit() (*surrogate.Model, error) {
	axisVals := make([][]int64, len(s.axes))
	for i, ax := range s.axes {
		axisVals[i] = ax.Values
	}
	var pts [][]int64
	var y []float64
	for _, c := range s.feasible {
		if c.done && !c.failed {
			pts = append(pts, c.pt.Values)
			y = append(y, c.obj)
		}
	}
	return surrogate.FitValues(axisVals, pts, y)
}

// dominatedExactly reports whether some exactly-simulated point
// dominates a candidate whose objective is optimistically objLo:
// better-or-equal on every front dimension and strictly better on at
// least one.
func (s *search) dominatedExactly(objLo float64, c *candidate) bool {
	for _, p := range s.feasible {
		if !p.done || p.failed {
			continue
		}
		if p.obj > objLo {
			continue
		}
		if s.useArea && p.area > c.area {
			continue
		}
		if s.usePower && p.power > c.power {
			continue
		}
		if p.obj < objLo || (s.useArea && p.area < c.area) || (s.usePower && p.power < c.power) {
			return true
		}
	}
	return false
}

// simulate exactly evaluates the given feasible indices through the
// sweep engine (worker pool, derive cache, batching) and folds the
// objective back into the search state. Failed points are marked
// infeasible — a design that does not simulate cannot be recommended —
// but still count as spent simulation budget.
func (s *search) simulate(indices []int, origin string) error {
	if len(indices) == 0 {
		return nil
	}
	group := s.opts.Group
	if group == nil {
		group = s.spec.CanonicalGroup()
	}
	gridIdx := make([]int, len(indices))
	byGrid := make(map[int]*candidate, len(indices))
	for i, fi := range indices {
		c := s.feasible[fi]
		gridIdx[i] = c.pt.Index
		byGrid[c.pt.Index] = c
	}
	r, err := sweep.RunIndicesContext(s.ctx, s.axes, gridIdx, func(p sweep.Point) (*model.Architecture, error) {
		return s.spec.Build(p)
	}, sweep.Options{
		Workers:    s.opts.Workers,
		Engine:     s.opts.Engine,
		BatchWidth: s.opts.BatchWidth,
		Cache:      s.opts.Cache,
		Group:      group,
	})
	if err != nil {
		return err
	}
	for i := range r.Points {
		pr := &r.Points[i]
		c := byGrid[pr.Point.Index]
		if c == nil {
			continue
		}
		c.done, c.origin, c.round = true, origin, s.round
		s.res.Simulated++
		if pr.Err != nil {
			c.failed = true
			continue
		}
		obj, ok := s.objectiveOf(pr.Run)
		if !ok {
			c.failed = true
			continue
		}
		c.obj = obj
	}
	if s.opts.Progress != nil {
		s.opts.Progress(s.res.Simulated, s.res.Feasible)
	}
	return nil
}

// objectiveOf extracts the minimized metric from a point's stats.
func (s *search) objectiveOf(st sweep.PointStats) (float64, bool) {
	switch s.objective {
	case ObjectiveFinalTime:
		return float64(st.FinalTimeNs), true
	default: // ObjectiveCycleMean, validated in Run
		if st.Iterations <= 0 {
			return 0, false
		}
		return float64(st.FinalTimeNs) / float64(st.Iterations), true
	}
}

// front extracts the Pareto-optimal set over the exactly-simulated
// points: objective plus whichever analytic cost dimensions the spec
// declares, all minimized. Exact ties on every dimension do not
// dominate, so equal designs appear side by side.
func (s *search) front() []Point {
	var sim []*candidate
	for _, c := range s.feasible {
		if c.done && !c.failed {
			sim = append(sim, c)
		}
	}
	dominates := func(p, q *candidate) bool {
		if p.obj > q.obj {
			return false
		}
		if s.useArea && p.area > q.area {
			return false
		}
		if s.usePower && p.power > q.power {
			return false
		}
		return p.obj < q.obj || (s.useArea && p.area < q.area) || (s.usePower && p.power < q.power)
	}
	var front []Point
	for _, c := range sim {
		dominated := false
		for _, other := range sim {
			if other != c && dominates(other, c) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		params := make(map[string]int64, len(c.pt.Names))
		for i, n := range c.pt.Names {
			params[n] = c.pt.Values[i]
		}
		p := Point{
			Index:     c.pt.Index,
			Params:    params,
			Objective: c.obj,
			Origin:    c.origin,
			Round:     c.round,
		}
		if s.useArea {
			p.Area = c.area
		}
		if s.usePower {
			p.Power = c.power
		}
		front = append(front, p)
	}
	sort.Slice(front, func(a, b int) bool {
		if front[a].Objective != front[b].Objective {
			return front[a].Objective < front[b].Objective
		}
		return front[a].Index < front[b].Index
	})
	return front
}
