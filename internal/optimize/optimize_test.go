package optimize

import (
	"context"
	"testing"

	"dyncomp/internal/archjson"

	// Link the executors the sweep engine resolves by name.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
)

// The reference design space: one function whose cost and source
// period are the declared axes. Final time is exactly affine in both —
// (count-1)·period + work at 1 op/ns — so the quadratic surrogate fits
// it exactly and the acquisition loop's pruning is put to a sharp
// test: the true front is the full W=50 column (objective and power
// trade off along the period axis; larger work is dominated at every
// period).
const refSpec = `{
  "version": 1,
  "name": "refgrid",
  "parameters": [
    {"name": "period", "default": 700,
     "values": [500, 550, 600, 650, 700, 750, 800, 850],
     "power": {"scale": 2e5, "exp": -1}},
    {"name": "work", "default": 100,
     "values": [50, 100, 150, 200],
     "power": {"scale": 0.5},
     "area": {"base": 1, "scale": 0.01}}
  ],
  "channels": [
    {"name": "in", "kind": "rendezvous"},
    {"name": "out", "kind": "rendezvous"}
  ],
  "functions": [
    {"name": "F", "body": [
      {"read": "in"},
      {"exec": {"label": "T", "cost": {"kind": "fixed", "ops": "$work"}}},
      {"write": "out"}
    ]}
  ],
  "resources": [{"name": "P1", "kind": "processor", "ops_per_sec": 1e9}],
  "mapping": [{"resource": "P1", "functions": ["F"]}],
  "sources": [{"name": "src", "channel": "in", "count": 40,
               "schedule": {"kind": "periodic", "period": "$period", "offset": 0}}],
  "sinks": [{"name": "sink", "channel": "out"}]
}`

func decodeRef(t *testing.T) *archjson.Spec {
	t.Helper()
	spec, err := archjson.Decode([]byte(refSpec))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func sameFront(t *testing.T, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("front has %d points, want %d\ngot:  %+v\nwant: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.Objective != w.Objective || g.Area != w.Area || g.Power != w.Power {
			t.Fatalf("front[%d] = %+v, want %+v", i, g, w)
		}
	}
}

// The acceptance property of the optimizer: the surrogate-driven loop
// returns the exact Pareto front a brute-force exhaustive sweep
// extracts, while simulating strictly fewer points.
func TestSurrogateFrontMatchesBruteForce(t *testing.T) {
	ctx := context.Background()
	spec := decodeRef(t)

	exh, err := Run(ctx, spec, Options{Objective: ObjectiveFinalTime, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !exh.Exhaustive || exh.Simulated != 32 || exh.GridPoints != 32 || exh.Feasible != 32 {
		t.Fatalf("exhaustive run: %+v", exh)
	}
	// The true front: every period at work=50 (objective rises, power
	// falls along the period axis; any work > 50 is dominated at the
	// same period).
	if len(exh.Front) != 8 {
		t.Fatalf("exhaustive front has %d points, want 8: %+v", len(exh.Front), exh.Front)
	}
	for _, p := range exh.Front {
		if p.Params["work"] != 50 {
			t.Fatalf("exhaustive front contains work=%d: %+v", p.Params["work"], p)
		}
		if p.Origin != OriginExhaustive {
			t.Fatalf("exhaustive front point has origin %q", p.Origin)
		}
	}

	res, err := Run(ctx, spec, Options{Objective: ObjectiveFinalTime})
	if err != nil {
		t.Fatal(err)
	}
	sameFront(t, res.Front, exh.Front)
	if !res.Converged || res.Exhaustive {
		t.Fatalf("surrogate run did not converge cleanly: %+v", res)
	}
	if res.Simulated >= exh.Simulated {
		t.Fatalf("surrogate run simulated %d of %d points — no savings over brute force", res.Simulated, exh.Simulated)
	}
	for _, p := range res.Front {
		if p.Origin != OriginSeed && p.Origin != OriginRefined {
			t.Fatalf("surrogate front point has origin %q: %+v", p.Origin, p)
		}
	}
	t.Logf("surrogate: %d/%d simulated, front %d points", res.Simulated, exh.Simulated, len(res.Front))
}

// Constraints cut the feasible set analytically before any simulation,
// and the constrained fronts agree between the two drivers.
func TestConstrainedFrontMatchesBruteForce(t *testing.T) {
	ctx := context.Background()
	spec := decodeRef(t)
	cons := []Constraint{{Metric: MetricPower, Max: 300}}

	exh, err := Run(ctx, spec, Options{Objective: ObjectiveFinalTime, Constraints: cons, Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Feasible >= 32 || exh.Feasible == 0 {
		t.Fatalf("power budget did not cut the grid: feasible %d of %d", exh.Feasible, exh.GridPoints)
	}
	if exh.Simulated != exh.Feasible {
		t.Fatalf("exhaustive simulated %d != feasible %d", exh.Simulated, exh.Feasible)
	}
	for _, p := range exh.Front {
		if p.Power > 300 {
			t.Fatalf("front point violates the power budget: %+v", p)
		}
	}

	res, err := Run(ctx, spec, Options{Objective: ObjectiveFinalTime, Constraints: cons})
	if err != nil {
		t.Fatal(err)
	}
	sameFront(t, res.Front, exh.Front)
	if res.Simulated > exh.Simulated {
		t.Fatalf("surrogate run simulated %d > feasible %d", res.Simulated, exh.Simulated)
	}
}

// The cycle-mean objective (the default) drives the same machinery.
func TestCycleMeanObjective(t *testing.T) {
	ctx := context.Background()
	spec := decodeRef(t)
	exh, err := Run(ctx, spec, Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Objective != ObjectiveCycleMean {
		t.Fatalf("default objective = %q", exh.Objective)
	}
	res, err := Run(ctx, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameFront(t, res.Front, exh.Front)
}

// An exhausted budget returns the partial front honestly: Converged
// false, simulated count at the cap.
func TestBudgetStopsEarly(t *testing.T) {
	spec := decodeRef(t)
	res, err := Run(context.Background(), spec, Options{Objective: ObjectiveFinalTime, Budget: 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated > 14 {
		t.Fatalf("budget 14 but simulated %d", res.Simulated)
	}
	if res.Converged {
		t.Fatalf("a 14-point budget on a 32-point grid should not converge: %+v", res)
	}
}

// Input validation: unknown objectives, unknown constraint metrics,
// constraints without a declared cost model, and spaces with no axes.
func TestRunRejectsBadInputs(t *testing.T) {
	ctx := context.Background()
	spec := decodeRef(t)
	if _, err := Run(ctx, spec, Options{Objective: "latency_p99"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if _, err := Run(ctx, spec, Options{Constraints: []Constraint{{Metric: "thermals", Max: 1}}}); err == nil {
		t.Fatal("unknown constraint metric accepted")
	}
	noCost, err := archjson.Decode([]byte(`{
		"version": 1, "name": "nocost",
		"parameters": [{"name": "work", "default": 50, "values": [50, 100]}],
		"channels": [{"name": "in", "kind": "rendezvous"}, {"name": "out", "kind": "rendezvous"}],
		"functions": [{"name": "F", "body": [
			{"read": "in"},
			{"exec": {"cost": {"kind": "fixed", "ops": "$work"}}},
			{"write": "out"}]}],
		"resources": [{"name": "P", "kind": "processor", "ops_per_sec": 1e9}],
		"mapping": [{"resource": "P", "functions": ["F"]}],
		"sources": [{"name": "s", "channel": "in", "count": 5}],
		"sinks": [{"name": "k", "channel": "out"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, noCost, Options{Constraints: []Constraint{{Metric: MetricArea, Max: 10}}}); err == nil {
		t.Fatal("area constraint without a declared area model accepted")
	}
	noAxes := decodeRef(t)
	for i := range noAxes.Parameters {
		noAxes.Parameters[i].Values = nil
	}
	if _, err := Run(ctx, noAxes, Options{}); err == nil {
		t.Fatal("axis-free design space accepted")
	}
}
