package workload

import "testing"

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 5) != Hash64(1, 5) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 5) == Hash64(1, 6) {
		t.Fatal("Hash64 index-insensitive")
	}
	if Hash64(1, 5) == Hash64(2, 5) {
		t.Fatal("Hash64 seed-insensitive")
	}
}

func TestHash64Distribution(t *testing.T) {
	// Crude balance check: the top bit should be ~50/50 over many draws.
	ones := 0
	const n = 10000
	for k := 0; k < n; k++ {
		if Hash64(42, k)>>63 == 1 {
			ones++
		}
	}
	if ones < n*4/10 || ones > n*6/10 {
		t.Fatalf("top-bit balance %d/%d", ones, n)
	}
}

func TestUniform(t *testing.T) {
	for k := 0; k < 1000; k++ {
		v := Uniform(3, k, 10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("Uniform out of range: %d", v)
		}
	}
	if Uniform(3, 0, 7, 7) != 7 {
		t.Fatal("degenerate range")
	}
	if Uniform(3, 0, 9, 5) != 9 {
		t.Fatal("inverted range should return lo")
	}
}

func TestUniformFloat(t *testing.T) {
	for k := 0; k < 1000; k++ {
		v := UniformFloat(4, k, 0.5, 1.5)
		if v < 0.5 || v >= 1.5 {
			t.Fatalf("UniformFloat out of range: %v", v)
		}
	}
}

func TestChoice(t *testing.T) {
	choices := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for k := 0; k < 100; k++ {
		seen[Choice(5, k, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Choice never picked some elements: %v", seen)
	}
	if Choice(5, 9, choices) != Choice(5, 9, choices) {
		t.Fatal("Choice not deterministic")
	}
}

func TestSizeStream(t *testing.T) {
	f := SizeStream(7, 100, 50)
	for k := 0; k < 500; k++ {
		v := f(k)
		if v < 100 || v >= 150 {
			t.Fatalf("size out of range: %d", v)
		}
	}
	g := SizeStream(7, 100, 0)
	if g(3) != 100 {
		t.Fatal("zero span should return min")
	}
	if f(9) != SizeStream(7, 100, 50)(9) {
		t.Fatal("SizeStream not deterministic")
	}
}
