// Package workload provides deterministic generators for model inputs:
// token size streams and parameter sequences. Determinism matters because
// the reference simulator and the equivalent model must consume identical
// token streams for their evolution instants to be comparable bit-exact;
// everything here is a pure function of (seed, k).
package workload

// Hash64 mixes a seed and an index into a well-distributed 64-bit value
// using the SplitMix64 finalizer. It is the only randomness primitive in
// the repository, so every workload is reproducible from its seed.
func Hash64(seed int64, k int) uint64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uniform returns a deterministic value in [lo, hi] for iteration k.
func Uniform(seed int64, k int, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + int64(Hash64(seed, k)%span)
}

// UniformFloat returns a deterministic value in [lo, hi) for iteration k.
func UniformFloat(seed int64, k int, lo, hi float64) float64 {
	frac := float64(Hash64(seed, k)>>11) / float64(1<<53)
	return lo + frac*(hi-lo)
}

// Choice returns a deterministic element of choices for iteration k.
func Choice[T any](seed int64, k int, choices []T) T {
	return choices[Hash64(seed, k)%uint64(len(choices))]
}

// SizeStream returns a token-size generator over [min, min+span).
func SizeStream(seed, min, span int64) func(k int) int64 {
	return func(k int) int64 {
		if span <= 0 {
			return min
		}
		return min + int64(Hash64(seed, k)%uint64(span))
	}
}

// Phase is one segment of a phase-changing stream: Len iterations whose
// values are constant (Span <= 0: always Size — a steady phase) or vary
// per iteration over [Size, Size+Span) (a transient phase).
type Phase struct {
	Len  int
	Size int64
	Span int64
}

// PhaseStream returns a token-size generator that walks the phases in
// order and stays in the last one forever (its Len is then ignored), so
// the stream is total for any k. Phase-changing workloads exercise the
// adaptive engine: steady phases are abstracted into the equivalent
// model, transients force it back to event-driven execution.
func PhaseStream(seed int64, phases []Phase) func(k int) int64 {
	return func(k int) int64 {
		rem := k
		for i, ph := range phases {
			if rem < ph.Len || i == len(phases)-1 {
				if ph.Span <= 0 {
					return ph.Size
				}
				return ph.Size + int64(Hash64(seed+int64(i)*1_000_003, rem)%uint64(ph.Span))
			}
			rem -= ph.Len
		}
		return 0
	}
}
