package maxplus

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements testing/quick.Generator so that property-based tests
// draw scalars that are ε with probability ~1/8 and otherwise bounded
// finite values (so overflow saturation does not interfere with the
// algebraic identities under test).
func (T) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genT(r))
}

func genT(r *rand.Rand) T {
	if r.Intn(8) == 0 {
		return Epsilon
	}
	return T(r.Int63n(1<<40) - 1<<39)
}

var quickCfg = &quick.Config{MaxCount: 2000}

func TestOplusBasics(t *testing.T) {
	if got := Oplus(3, 5); got != 5 {
		t.Fatalf("Oplus(3,5) = %v, want 5", got)
	}
	if got := Oplus(Epsilon, 7); got != 7 {
		t.Fatalf("Oplus(ε,7) = %v, want 7", got)
	}
	if got := Oplus(Epsilon, Epsilon); got != Epsilon {
		t.Fatalf("Oplus(ε,ε) = %v, want ε", got)
	}
	if got := OplusN(); got != Epsilon {
		t.Fatalf("OplusN() = %v, want ε", got)
	}
	if got := OplusN(1, 9, 4); got != 9 {
		t.Fatalf("OplusN(1,9,4) = %v, want 9", got)
	}
}

func TestOtimesBasics(t *testing.T) {
	if got := Otimes(3, 5); got != 8 {
		t.Fatalf("Otimes(3,5) = %v, want 8", got)
	}
	if got := Otimes(Epsilon, 5); got != Epsilon {
		t.Fatalf("Otimes(ε,5) = %v, want ε", got)
	}
	if got := Otimes(5, Epsilon); got != Epsilon {
		t.Fatalf("Otimes(5,ε) = %v, want ε", got)
	}
	if got := Otimes(E, 11); got != 11 {
		t.Fatalf("Otimes(e,11) = %v, want 11", got)
	}
	if got := OtimesN(); got != E {
		t.Fatalf("OtimesN() = %v, want e", got)
	}
	if got := OtimesN(1, 2, 3); got != 6 {
		t.Fatalf("OtimesN(1,2,3) = %v, want 6", got)
	}
}

func TestOtimesSaturates(t *testing.T) {
	if got := Otimes(Top, 1); got != Top {
		t.Fatalf("Otimes(Top,1) = %v, want Top", got)
	}
	if got := Otimes(Top-1, Top-1); got != Top {
		t.Fatalf("Otimes(Top-1,Top-1) = %v, want Top", got)
	}
	// Negative saturation must not wrap around into a large positive value
	// and must not collide with the ε sentinel.
	big := Epsilon + 2
	got := Otimes(big, big)
	if got == Epsilon || got > 0 {
		t.Fatalf("negative saturation produced %v", got)
	}
}

func TestScalarString(t *testing.T) {
	if Epsilon.String() != "ε" {
		t.Fatalf("Epsilon.String() = %q", Epsilon.String())
	}
	if T(42).String() != "42" {
		t.Fatalf("T(42).String() = %q", T(42).String())
	}
	if Epsilon.GoString() != "maxplus.Epsilon" {
		t.Fatalf("GoString = %q", Epsilon.GoString())
	}
	if T(-3).GoString() != "maxplus.T(-3)" {
		t.Fatalf("GoString = %q", T(-3).GoString())
	}
}

// Properties of ⊕: commutative, associative, idempotent, identity ε.
func TestOplusCommutative(t *testing.T) {
	if err := quick.Check(func(x, y T) bool {
		return Oplus(x, y) == Oplus(y, x)
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestOplusAssociative(t *testing.T) {
	if err := quick.Check(func(x, y, z T) bool {
		return Oplus(Oplus(x, y), z) == Oplus(x, Oplus(y, z))
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestOplusIdempotentWithIdentity(t *testing.T) {
	if err := quick.Check(func(x T) bool {
		return Oplus(x, x) == x && Oplus(x, Epsilon) == x
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// Properties of ⊗: commutative, associative, identity e, absorbing ε,
// distributes over ⊕.
func TestOtimesCommutativeAssociative(t *testing.T) {
	if err := quick.Check(func(x, y, z T) bool {
		return Otimes(x, y) == Otimes(y, x) &&
			Otimes(Otimes(x, y), z) == Otimes(x, Otimes(y, z))
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestOtimesIdentityAbsorbing(t *testing.T) {
	if err := quick.Check(func(x T) bool {
		return Otimes(x, E) == x && Otimes(x, Epsilon) == Epsilon
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestOtimesDistributesOverOplus(t *testing.T) {
	if err := quick.Check(func(x, y, z T) bool {
		return Otimes(x, Oplus(y, z)) == Oplus(Otimes(x, y), Otimes(x, z))
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinAndIsEpsilon(t *testing.T) {
	if !Epsilon.IsEpsilon() {
		t.Fatal("Epsilon.IsEpsilon() = false")
	}
	if T(0).IsEpsilon() {
		t.Fatal("T(0).IsEpsilon() = true")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Fatal("Min broken")
	}
	if Min(Epsilon, 5) != Epsilon {
		t.Fatal("Min should treat ε as smallest")
	}
}
