package maxplus

import (
	"math/rand"
	"testing"
)

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	for _, x := range v {
		if x != Epsilon {
			t.Fatal("NewVector not ε-filled")
		}
	}
	if v.AllFinite() {
		t.Fatal("ε vector reported finite")
	}
	v[0], v[1], v[2] = 1, 2, 3
	if !v.AllFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestVectorOplusScale(t *testing.T) {
	v := Vector{1, Epsilon, 5}
	w := Vector{0, 7, 2}
	got := v.Oplus(w)
	want := Vector{1, 7, 5}
	if !got.Equal(want) {
		t.Fatalf("Oplus = %v, want %v", got, want)
	}
	s := v.Scale(10)
	if !s.Equal(Vector{11, Epsilon, 15}) {
		t.Fatalf("Scale = %v", s)
	}
}

func TestVectorOplusSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Oplus(Vector{1, 2})
}

func TestVectorEqual(t *testing.T) {
	if (Vector{1, 2}).Equal(Vector{1}) {
		t.Fatal("different lengths reported equal")
	}
	if (Vector{1, 2}).Equal(Vector{1, 3}) {
		t.Fatal("different entries reported equal")
	}
	if !(Vector{Epsilon, 2}).Equal(Vector{Epsilon, 2}) {
		t.Fatal("equal vectors reported different")
	}
}

func TestVectorString(t *testing.T) {
	got := Vector{1, Epsilon}.String()
	if got != "[1 ε]" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: Scale distributes over Oplus.
func TestVectorScaleDistributes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(6)
		v, w := NewVector(n), NewVector(n)
		for j := 0; j < n; j++ {
			v[j], w[j] = genT(r), genT(r)
		}
		a := genT(r)
		left := v.Oplus(w).Scale(a)
		right := v.Scale(a).Oplus(w.Scale(a))
		if !left.Equal(right) {
			t.Fatalf("scale does not distribute: a=%v v=%v w=%v", a, v, w)
		}
	}
}
