package maxplus

import (
	"math/rand"
	"testing"
)

// funcProvider adapts closures to the MatrixProvider interface.
type funcProvider struct {
	a func(k, i int) *Matrix
	b func(k, j int) *Matrix
	c func(k, l int) *Matrix
	d func(k, m int) *Matrix
}

func (p funcProvider) A(k, i int) *Matrix { return p.a(k, i) }
func (p funcProvider) B(k, j int) *Matrix { return p.b(k, j) }
func (p funcProvider) C(k, l int) *Matrix { return p.c(k, l) }
func (p funcProvider) D(k, m int) *Matrix { return p.d(k, m) }

// didacticDurations returns the six execution durations of the paper's
// didactic example for iteration k, deterministically pseudo-random.
func didacticDurations(k int) (ti1, tj1, ti2, ti3, tj3, ti4 T) {
	r := rand.New(rand.NewSource(int64(k) + 1000))
	f := func() T { return T(1 + r.Int63n(50)) }
	return f(), f(), f(), f(), f(), f()
}

// didacticProvider builds the matrices of equations (1)-(6) of the paper:
//
//	xM1(k) = u(k) ⊕ xM4(k-1)
//	xM2(k) = xM1(k)⊗Ti1(k) ⊕ xM5(k-1)
//	xM3(k) = xM2(k)⊗Tj1(k) ⊕ xM4(k-1)
//	xM4(k) = xM3(k)⊗Ti2(k) ⊕ xM2(k)⊗Ti3(k) ⊕ xM5(k-1)
//	xM5(k) = xM4(k)⊗Tj3(k) ⊕ xM6(k-1)
//	y(k)   = xM6(k) = xM5(k)⊗Ti4(k)
//
// Indices: X = [xM1 xM2 xM3 xM4 xM5 xM6].
func didacticProvider() MatrixProvider {
	return funcProvider{
		a: func(k, i int) *Matrix {
			m := NewMatrix(6, 6)
			switch i {
			case 0:
				ti1, tj1, ti2, ti3, tj3, ti4 := didacticDurations(k)
				m.Set(1, 0, ti1)
				m.Set(2, 1, tj1)
				m.Set(3, 2, ti2)
				m.Set(3, 1, ti3)
				m.Set(4, 3, tj3)
				m.Set(5, 4, ti4)
			case 1:
				m.Set(0, 3, E) // xM1 <- xM4(k-1)
				m.Set(1, 4, E) // xM2 <- xM5(k-1)
				m.Set(2, 3, E) // xM3 <- xM4(k-1)
				m.Set(3, 4, E) // xM4 <- xM5(k-1)
				m.Set(4, 5, E) // xM5 <- xM6(k-1)
			}
			return m
		},
		b: func(k, j int) *Matrix {
			m := NewMatrix(6, 1)
			if j == 0 {
				m.Set(0, 0, E)
			}
			return m
		},
		c: func(k, l int) *Matrix {
			m := NewMatrix(1, 6)
			if l == 0 {
				m.Set(0, 5, E)
			}
			return m
		},
		d: func(k, m int) *Matrix { return NewMatrix(1, 1) },
	}
}

// didacticDirect evaluates equations (1)-(6) literally, as a reference.
func didacticDirect(n int, u func(k int) T) (xs []Vector, ys []T) {
	prev := NewVector(6)
	for k := 0; k < n; k++ {
		ti1, tj1, ti2, ti3, tj3, ti4 := didacticDurations(k)
		x := NewVector(6)
		x[0] = Oplus(u(k), prev[3])
		x[1] = Oplus(Otimes(x[0], ti1), prev[4])
		x[2] = Oplus(Otimes(x[1], tj1), prev[3])
		x[3] = OplusN(Otimes(x[2], ti2), Otimes(x[1], ti3), prev[4])
		x[4] = Oplus(Otimes(x[3], tj3), prev[5])
		x[5] = Otimes(x[4], ti4)
		xs = append(xs, x)
		ys = append(ys, x[5])
		prev = x
	}
	return xs, ys
}

func TestSystemReproducesDidacticEquations(t *testing.T) {
	sys, err := NewSystem(6, 1, 1, 1, 0, didacticProvider())
	if err != nil {
		t.Fatal(err)
	}
	const period = 100
	u := func(k int) T { return T(int64(k) * period) }

	wantX, wantY := didacticDirect(200, u)
	for k := 0; k < 200; k++ {
		x, y, err := sys.Step(Vector{u(k)})
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		if !x.Equal(wantX[k]) {
			t.Fatalf("k=%d: X=%v want %v", k, x, wantX[k])
		}
		if y[0] != wantY[k] {
			t.Fatalf("k=%d: Y=%v want %v", k, y[0], wantY[k])
		}
	}
	if sys.K() != 200 {
		t.Fatalf("K() = %d", sys.K())
	}
}

func TestSystemFirstIterationIgnoresEmptyHistory(t *testing.T) {
	// At k=0 all history is ε; X(0) must depend only on U(0).
	sys, err := NewSystem(6, 1, 1, 1, 0, didacticProvider())
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := sys.Step(Vector{0})
	if err != nil {
		t.Fatal(err)
	}
	ti1, tj1, ti2, ti3, tj3, ti4 := didacticDurations(0)
	if x[0] != 0 {
		t.Fatalf("xM1(0) = %v", x[0])
	}
	if x[1] != ti1 {
		t.Fatalf("xM2(0) = %v, want %v", x[1], ti1)
	}
	wantXM4 := Oplus(Otimes(Otimes(ti1, tj1), ti2), Otimes(ti1, ti3))
	if x[3] != wantXM4 {
		t.Fatalf("xM4(0) = %v, want %v", x[3], wantXM4)
	}
	wantY := OtimesN(wantXM4, tj3, ti4)
	if y[0] != wantY {
		t.Fatalf("y(0) = %v, want %v", y[0], wantY)
	}
}

func TestSystemReset(t *testing.T) {
	sys, err := NewSystem(6, 1, 1, 1, 0, didacticProvider())
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := sys.Step(Vector{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Step(Vector{100}); err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	if sys.K() != 0 {
		t.Fatal("Reset did not rewind k")
	}
	again, _, err := sys.Step(Vector{0})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Equal(first) {
		t.Fatalf("after Reset X(0)=%v, want %v", again, first)
	}
}

func TestSystemRejectsBadInput(t *testing.T) {
	sys, err := NewSystem(6, 1, 1, 1, 0, didacticProvider())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Step(Vector{1, 2}); err == nil {
		t.Fatal("expected error for wrong input size")
	}
}

func TestSystemRejectsNonNilpotentA0(t *testing.T) {
	p := &ConstProvider{NX: 2, NU: 1, NY: 1}
	a0 := NewMatrix(2, 2)
	a0.Set(0, 1, 1)
	a0.Set(1, 0, 1) // zero-delay cycle
	p.AS = []*Matrix{a0}
	b := NewMatrix(2, 1)
	b.Set(0, 0, E)
	p.BS = []*Matrix{b}
	c := NewMatrix(1, 2)
	c.Set(0, 1, E)
	p.CS = []*Matrix{c}
	sys, err := NewSystem(2, 1, 1, 0, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Step(Vector{0}); err == nil {
		t.Fatal("expected nilpotency error")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, 1, 1, 0, 0, &ConstProvider{}); err == nil {
		t.Fatal("expected error for nx=0")
	}
	if _, err := NewSystem(1, 1, 1, -1, 0, &ConstProvider{}); err == nil {
		t.Fatal("expected error for negative delay")
	}
	if _, err := NewSystem(1, 1, 1, 0, 0, nil); err == nil {
		t.Fatal("expected error for nil provider")
	}
}

func TestConstProviderDefaults(t *testing.T) {
	p := &ConstProvider{NX: 2, NU: 3, NY: 4}
	if p.A(0, 5).Rows() != 2 || p.A(0, 5).Cols() != 2 {
		t.Fatal("A default size wrong")
	}
	if p.B(0, 5).Cols() != 3 {
		t.Fatal("B default size wrong")
	}
	if p.C(0, 5).Rows() != 4 {
		t.Fatal("C default size wrong")
	}
	if p.D(0, 5).Rows() != 4 || p.D(0, 5).Cols() != 3 {
		t.Fatal("D default size wrong")
	}
}

// Property: the computed X(k) is monotone in the input instants — feeding a
// later u(k) can never make any instant earlier (causality).
func TestSystemMonotoneInInput(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s1, _ := NewSystem(6, 1, 1, 1, 0, didacticProvider())
		s2, _ := NewSystem(6, 1, 1, 1, 0, didacticProvider())
		var tm T
		for k := 0; k < 20; k++ {
			tm = Otimes(tm, T(r.Int63n(100)))
			shift := T(r.Int63n(50))
			x1, y1, err1 := s1.Step(Vector{tm})
			x2, y2, err2 := s2.Step(Vector{Otimes(tm, shift)})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			for i := range x1 {
				if x2[i] < x1[i] {
					t.Fatalf("k=%d: later input made instant %d earlier (%v < %v)", k, i, x2[i], x1[i])
				}
			}
			if y2[0] < y1[0] {
				t.Fatalf("k=%d: later input made output earlier", k)
			}
		}
	}
}
