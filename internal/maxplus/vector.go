package maxplus

import (
	"fmt"
	"strings"
)

// Vector is a column vector of (max,+) scalars. The zero value is an empty
// vector; use NewVector to create one filled with ε.
type Vector []T

// NewVector returns a vector of n entries, all ε.
func NewVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = Epsilon
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Oplus returns the entrywise maximum v ⊕ w. Both vectors must have the
// same length.
func (v Vector) Oplus(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("maxplus: vector size mismatch %d vs %d", len(v), len(w)))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = Oplus(v[i], w[i])
	}
	return out
}

// Scale returns the vector with every entry multiplied (⊗, i.e. shifted)
// by the scalar a.
func (v Vector) Scale(a T) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = Otimes(a, v[i])
	}
	return out
}

// Equal reports whether v and w have identical length and entries.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// AllFinite reports whether no entry of v is ε.
func (v Vector) AllFinite() bool {
	for _, x := range v {
		if x == Epsilon {
			return false
		}
	}
	return true
}

// String renders the vector as "[x0 x1 ...]" with ε shown symbolically.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(x.String())
	}
	b.WriteByte(']')
	return b.String()
}
