package maxplus

import (
	"fmt"
	"strings"
)

// Matrix is a dense (max,+) matrix. Entries that are ε denote the absence
// of a dependency; the zero matrix (all ε) is the additive identity of the
// matrix semiring.
type Matrix struct {
	rows, cols int
	a          []T // row-major
}

// NewMatrix returns a rows×cols matrix with every entry ε.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("maxplus: negative matrix dimension")
	}
	a := make([]T, rows*cols)
	for i := range a {
		a[i] = Epsilon
	}
	return &Matrix{rows: rows, cols: cols, a: a}
}

// Identity returns the n×n (max,+) identity matrix: e on the diagonal,
// ε elsewhere.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, E)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) T {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, x T) {
	m.check(i, j)
	m.a[i*m.cols+j] = x
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("maxplus: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, cols: m.cols, a: make([]T, len(m.a))}
	copy(c.a, m.a)
	return c
}

// Oplus returns the entrywise maximum m ⊕ n. Dimensions must match.
func (m *Matrix) Oplus(n *Matrix) *Matrix {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("maxplus: matrix size mismatch %dx%d vs %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMatrix(m.rows, m.cols)
	for i := range m.a {
		out.a[i] = Oplus(m.a[i], n.a[i])
	}
	return out
}

// Otimes returns the (max,+) matrix product m ⊗ n, where
// (m⊗n)[i][j] = ⊕_k m[i][k] ⊗ n[k][j].
func (m *Matrix) Otimes(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("maxplus: matrix product mismatch %dx%d vs %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewMatrix(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.a[i*m.cols+k]
			if mik == Epsilon {
				continue
			}
			for j := 0; j < n.cols; j++ {
				nkj := n.a[k*n.cols+j]
				if nkj == Epsilon {
					continue
				}
				idx := i*out.cols + j
				out.a[idx] = Oplus(out.a[idx], Otimes(mik, nkj))
			}
		}
	}
	return out
}

// Apply returns the matrix-vector product m ⊗ v.
func (m *Matrix) Apply(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("maxplus: apply mismatch %dx%d vs vector %d", m.rows, m.cols, len(v)))
	}
	out := NewVector(m.rows)
	for i := 0; i < m.rows; i++ {
		acc := Epsilon
		row := m.a[i*m.cols : (i+1)*m.cols]
		for j, x := range row {
			if x == Epsilon || v[j] == Epsilon {
				continue
			}
			acc = Oplus(acc, Otimes(x, v[j]))
		}
		out[i] = acc
	}
	return out
}

// Power returns m ⊗ m ⊗ ... ⊗ m (p factors). Power(0) is the identity.
// m must be square and p non-negative.
func (m *Matrix) Power(p int) *Matrix {
	if m.rows != m.cols {
		panic("maxplus: power of non-square matrix")
	}
	if p < 0 {
		panic("maxplus: negative matrix power")
	}
	out := Identity(m.rows)
	base := m.Clone()
	for p > 0 {
		if p&1 == 1 {
			out = out.Otimes(base)
		}
		base = base.Otimes(base)
		p >>= 1
	}
	return out
}

// Equal reports whether m and n have identical dimensions and entries.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != n.a[i] {
			return false
		}
	}
	return true
}

// IsNilpotent reports whether some power of m up to m^rows is the all-ε
// matrix. Nilpotency of the instantaneous dependency matrix A(k,0) is
// exactly the condition under which the implicit recurrence
// X = A0⊗X ⊕ b has a unique finite least solution (no zero-delay cycles).
func (m *Matrix) IsNilpotent() bool {
	if m.rows != m.cols {
		return false
	}
	p := m.Clone()
	for i := 0; i < m.rows; i++ {
		if p.isAllEpsilon() {
			return true
		}
		p = p.Otimes(m)
	}
	return p.isAllEpsilon()
}

func (m *Matrix) isAllEpsilon() bool {
	for _, x := range m.a {
		if x != Epsilon {
			return false
		}
	}
	return true
}

// Star returns the Kleene star A* = I ⊕ A ⊕ A² ⊕ ... ⊕ A^(n-1), defined
// when A has no positive-weight circuit. For the nilpotent matrices
// produced by temporal dependency graphs the series is finite. Star
// panics if A has a circuit of positive weight (the series would diverge).
func (m *Matrix) Star() *Matrix {
	if m.rows != m.cols {
		panic("maxplus: star of non-square matrix")
	}
	n := m.rows
	out := Identity(n)
	p := Identity(n)
	for i := 1; i <= n; i++ {
		p = p.Otimes(m)
		if i == n {
			// A^n must contribute nothing new if no positive circuit
			// exists; a strictly positive diagonal betrays divergence.
			for d := 0; d < n; d++ {
				if p.At(d, d) > E {
					panic("maxplus: star diverges (positive-weight circuit)")
				}
			}
			break
		}
		out = out.Oplus(p)
	}
	return out
}

// String renders the matrix in row-per-line form with ε shown symbolically.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.At(i, j).String())
		}
		b.WriteString("]\n")
	}
	return b.String()
}
