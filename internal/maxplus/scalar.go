// Package maxplus implements the (max,+) algebra used by the dynamic
// computation method to describe evolution instants of performance models.
//
// The algebra works over the set R ∪ {ε} where ε = -∞. Its two operators
// are ⊕ (max), which reflects synchronization among processes, and
// ⊗ (conventional addition), which expresses a time lag according to a
// specific duration. ε is the identity (zero) element of ⊕ and absorbing
// for ⊗; e = 0 is the identity (unit) element of ⊗.
//
// Scalars are fixed-point times (int64 ticks); the package also provides
// vectors, matrices and the linear recurrence form
//
//	X(k) = A(k,0)⊗X(k) ⊕ A(k,1)⊗X(k-1) ⊕ B(k,0)⊗U(k)
//	Y(k) = C(k,0)⊗X(k)
//
// used by the paper (equations (7)-(10)).
package maxplus

import (
	"fmt"
	"math"
	"strconv"
)

// T is a (max,+) scalar: a time instant or duration measured in integer
// ticks, or Epsilon (-∞), the neutral element of ⊕.
type T int64

// Epsilon is ε = -∞, the zero element of the (max,+) semiring: x ⊕ ε = x
// and x ⊗ ε = ε. It marks "no event / never".
const Epsilon T = math.MinInt64

// E is e = 0, the unit element of ⊗: x ⊗ e = x.
const E T = 0

// Top is the largest representable instant. It is useful as an initial
// value when folding with Min.
const Top T = math.MaxInt64

// IsEpsilon reports whether x is ε.
func (x T) IsEpsilon() bool { return x == Epsilon }

// Oplus returns x ⊕ y = max(x, y), the synchronization operator.
func Oplus(x, y T) T {
	if x > y {
		return x
	}
	return y
}

// OplusN folds ⊕ over any number of scalars; OplusN() = ε.
func OplusN(xs ...T) T {
	acc := Epsilon
	for _, x := range xs {
		if x > acc {
			acc = x
		}
	}
	return acc
}

// Otimes returns x ⊗ y = x + y, the time-lag operator, with ε absorbing:
// ε ⊗ y = x ⊗ ε = ε. The addition saturates instead of wrapping so that
// very large instants stay ordered.
func Otimes(x, y T) T {
	if x == Epsilon || y == Epsilon {
		return Epsilon
	}
	s := x + y
	// Saturate on overflow: operands have the same sign and the result
	// flipped sign.
	if x > 0 && y > 0 && s < 0 {
		return Top
	}
	if x < 0 && y < 0 && s >= 0 {
		return Epsilon + 1 // most negative finite value
	}
	return s
}

// OtimesN folds ⊗ over any number of scalars; OtimesN() = e.
func OtimesN(xs ...T) T {
	acc := E
	for _, x := range xs {
		acc = Otimes(acc, x)
	}
	return acc
}

// Min returns the conventional minimum of x and y, treating ε as smaller
// than everything. It is not a semiring operation but is convenient for
// trace analysis.
func Min(x, y T) T {
	if x < y {
		return x
	}
	return y
}

// String formats the scalar, rendering ε as "ε".
func (x T) String() string {
	if x == Epsilon {
		return "ε"
	}
	return strconv.FormatInt(int64(x), 10)
}

// GoString implements fmt.GoStringer for debugging output.
func (x T) GoString() string {
	if x == Epsilon {
		return "maxplus.Epsilon"
	}
	return fmt.Sprintf("maxplus.T(%d)", int64(x))
}
