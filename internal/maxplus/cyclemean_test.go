package maxplus

import (
	"math"
	"testing"
)

func TestMaxCycleMeanSimpleCycle(t *testing.T) {
	// Two nodes, 0 -> 1 weight 3, 1 -> 0 weight 5: cycle mean (3+5)/2 = 4.
	a := NewMatrix(2, 2)
	a.Set(1, 0, 3)
	a.Set(0, 1, 5)
	lambda, ok := MaxCycleMean(a)
	if !ok {
		t.Fatal("expected a circuit")
	}
	if math.Abs(lambda-4) > 1e-9 {
		t.Fatalf("lambda = %v, want 4", lambda)
	}
}

func TestMaxCycleMeanPicksHeaviestCycle(t *testing.T) {
	// Self loop weight 2 on node 0; cycle 1<->2 with mean 6.
	a := NewMatrix(3, 3)
	a.Set(0, 0, 2)
	a.Set(2, 1, 4)
	a.Set(1, 2, 8)
	lambda, ok := MaxCycleMean(a)
	if !ok {
		t.Fatal("expected a circuit")
	}
	if math.Abs(lambda-6) > 1e-9 {
		t.Fatalf("lambda = %v, want 6", lambda)
	}
}

func TestMaxCycleMeanNilpotent(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(1, 0, 5)
	a.Set(2, 1, 2)
	if _, ok := MaxCycleMean(a); ok {
		t.Fatal("acyclic matrix should have no cycle mean")
	}
}

func TestMaxCycleMeanEmpty(t *testing.T) {
	if _, ok := MaxCycleMean(NewMatrix(0, 0)); ok {
		t.Fatal("empty matrix should have no cycle mean")
	}
}

func TestMaxCycleMeanNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MaxCycleMean(NewMatrix(2, 3))
}

// The cycle mean bounds the asymptotic growth of the autonomous recurrence
// X(k) = A ⊗ X(k-1): after many steps, max-entry growth per step -> λ.
func TestCycleMeanMatchesRecurrenceGrowth(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(1, 0, 10)
	a.Set(2, 1, 20)
	a.Set(0, 2, 30) // single cycle, mean (10+20+30)/3 = 20
	lambda, ok := MaxCycleMean(a)
	if !ok {
		t.Fatal("expected a circuit")
	}
	x := Vector{0, 0, 0}
	const steps = 300
	for i := 0; i < steps; i++ {
		x = a.Apply(x)
	}
	growth := float64(x[0]) / steps
	if math.Abs(growth-lambda) > 1.0 {
		t.Fatalf("recurrence growth %v does not match cycle mean %v", growth, lambda)
	}
}
