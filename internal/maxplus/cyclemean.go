package maxplus

// MaxCycleMean computes the maximum cycle mean λ of a square (max,+)
// matrix A using Karp's algorithm. λ is the (max,+) eigenvalue of A: for
// the autonomous recurrence X(k) = A ⊗ X(k-1) it is the asymptotic period
// of the system, i.e. the inverse throughput of the modeled architecture
// when execution durations are constant.
//
// The second return value reports whether the precedence graph of A
// contains at least one circuit; when it does not (nilpotent A), λ is
// undefined and ok is false.
//
// Complexity is O(n³) in time and O(n²) in space.
func MaxCycleMean(a *Matrix) (lambda float64, ok bool) {
	if a.Rows() != a.Cols() {
		panic("maxplus: cycle mean of non-square matrix")
	}
	n := a.Rows()
	if n == 0 {
		return 0, false
	}

	// d[k][v] = maximum weight of a path of exactly k arcs ending at v,
	// starting anywhere. Using an artificial uniform source (all starts
	// allowed) keeps every strongly connected component reachable.
	d := make([][]T, n+1)
	for k := range d {
		d[k] = make([]T, n)
	}
	for v := 0; v < n; v++ {
		d[0][v] = E
	}
	for k := 1; k <= n; k++ {
		for v := 0; v < n; v++ {
			best := Epsilon
			for u := 0; u < n; u++ {
				w := a.At(v, u) // arc u -> v has weight A[v][u] (A acts on column vectors)
				if w == Epsilon || d[k-1][u] == Epsilon {
					continue
				}
				best = Oplus(best, Otimes(d[k-1][u], w))
			}
			d[k][v] = best
		}
	}

	// λ = max_v min_{0<=k<n, d[n][v] finite} (d[n][v] - d[k][v]) / (n - k)
	found := false
	for v := 0; v < n; v++ {
		if d[n][v] == Epsilon {
			continue
		}
		minRatio := 0.0
		first := true
		for k := 0; k < n; k++ {
			if d[k][v] == Epsilon {
				continue
			}
			ratio := float64(d[n][v]-d[k][v]) / float64(n-k)
			if first || ratio < minRatio {
				minRatio = ratio
				first = false
			}
		}
		if first {
			continue
		}
		if !found || minRatio > lambda {
			lambda = minRatio
			found = true
		}
	}
	return lambda, found
}
