package maxplus

import (
	"errors"
	"fmt"
)

// System is the linear (max,+) recurrence of the paper's equations (7)-(10):
//
//	X(k) = ⊕_{i=0..a} A_i(k) ⊗ X(k-i)  ⊕  ⊕_{j=0..b} B_j(k) ⊗ U(k-j)
//	Y(k) = ⊕_{l=0..c} C_l(k) ⊗ X(k-l)  ⊕  ⊕_{m=0..d} D_m(k) ⊗ U(k-m)
//
// The matrices may vary with k (data-dependent execution durations); they
// are produced by a MatrixProvider. A0(k) — the instantaneous dependency
// matrix — must be nilpotent: the implicit part X(k) = A0⊗X(k) ⊕ r is
// then solved exactly by X(k) = A0* ⊗ r.
type System struct {
	nx, nu, ny int
	maxDelayX  int // a
	maxDelayU  int // b, also covers d
	provider   MatrixProvider

	// histories: hx[0] is X(k-1), hx[1] is X(k-2), ...
	hx []Vector
	hu []Vector
	k  int
}

// MatrixProvider supplies the (possibly k-dependent) matrices of a System.
// Implementations must return matrices of consistent dimensions:
// A(k,i): nx×nx, B(k,j): nx×nu, C(k,l): ny×nx, D(k,m): ny×nu.
type MatrixProvider interface {
	A(k, i int) *Matrix
	B(k, j int) *Matrix
	C(k, l int) *Matrix
	D(k, m int) *Matrix
}

// ConstProvider is a MatrixProvider with k-independent matrices. Nil slots
// are treated as all-ε matrices of the right size.
type ConstProvider struct {
	NX, NU, NY int
	AS         []*Matrix // AS[i] = A(·, i)
	BS         []*Matrix
	CS         []*Matrix
	DS         []*Matrix
}

// A returns A(k,i); the all-ε matrix when unspecified.
func (p *ConstProvider) A(_, i int) *Matrix {
	if i < len(p.AS) && p.AS[i] != nil {
		return p.AS[i]
	}
	return NewMatrix(p.NX, p.NX)
}

// B returns B(k,j); the all-ε matrix when unspecified.
func (p *ConstProvider) B(_, j int) *Matrix {
	if j < len(p.BS) && p.BS[j] != nil {
		return p.BS[j]
	}
	return NewMatrix(p.NX, p.NU)
}

// C returns C(k,l); the all-ε matrix when unspecified.
func (p *ConstProvider) C(_, l int) *Matrix {
	if l < len(p.CS) && p.CS[l] != nil {
		return p.CS[l]
	}
	return NewMatrix(p.NY, p.NX)
}

// D returns D(k,m); the all-ε matrix when unspecified.
func (p *ConstProvider) D(_, m int) *Matrix {
	if m < len(p.DS) && p.DS[m] != nil {
		return p.DS[m]
	}
	return NewMatrix(p.NY, p.NU)
}

// NewSystem creates a recurrence with nx intermediate instants, nu inputs
// and ny outputs, depending on at most maxDelayX past X vectors and
// maxDelayU past U vectors. Histories are initialised to ε ("never
// happened"), matching a system that has not evolved yet.
func NewSystem(nx, nu, ny, maxDelayX, maxDelayU int, p MatrixProvider) (*System, error) {
	if nx <= 0 || nu <= 0 || ny <= 0 {
		return nil, fmt.Errorf("maxplus: system dimensions must be positive (nx=%d nu=%d ny=%d)", nx, nu, ny)
	}
	if maxDelayX < 0 || maxDelayU < 0 {
		return nil, errors.New("maxplus: negative delay depth")
	}
	if p == nil {
		return nil, errors.New("maxplus: nil matrix provider")
	}
	s := &System{nx: nx, nu: nu, ny: ny, maxDelayX: maxDelayX, maxDelayU: maxDelayU, provider: p}
	s.hx = make([]Vector, maxDelayX)
	for i := range s.hx {
		s.hx[i] = NewVector(nx)
	}
	s.hu = make([]Vector, maxDelayU)
	for i := range s.hu {
		s.hu[i] = NewVector(nu)
	}
	return s, nil
}

// K returns the index of the next iteration to be computed.
func (s *System) K() int { return s.k }

// Step advances the recurrence by one iteration using the input instants
// u = U(k). It returns X(k) and Y(k). Step is the algebraic core of the
// paper's ComputeInstant() action.
func (s *System) Step(u Vector) (x, y Vector, err error) {
	if len(u) != s.nu {
		return nil, nil, fmt.Errorf("maxplus: input size %d, want %d", len(u), s.nu)
	}
	k := s.k

	// r = ⊕_{i=1..a} A_i ⊗ X(k-i) ⊕ ⊕_{j=0..b} B_j ⊗ U(k-j)
	r := NewVector(s.nx)
	for i := 1; i <= s.maxDelayX; i++ {
		r = r.Oplus(s.provider.A(k, i).Apply(s.hx[i-1]))
	}
	r = r.Oplus(s.provider.B(k, 0).Apply(u))
	for j := 1; j <= s.maxDelayU; j++ {
		r = r.Oplus(s.provider.B(k, j).Apply(s.hu[j-1]))
	}

	// Solve the implicit part X = A0 ⊗ X ⊕ r as X = A0* ⊗ r.
	a0 := s.provider.A(k, 0)
	if !a0.IsNilpotent() {
		return nil, nil, errors.New("maxplus: A(k,0) is not nilpotent (zero-delay dependency cycle)")
	}
	x = a0.Star().Apply(r)

	// Y(k) = ⊕ C_l ⊗ X(k-l) ⊕ ⊕ D_m ⊗ U(k-m)
	y = s.provider.C(k, 0).Apply(x)
	for l := 1; l <= s.maxDelayX; l++ {
		y = y.Oplus(s.provider.C(k, l).Apply(s.hx[l-1]))
	}
	y = y.Oplus(s.provider.D(k, 0).Apply(u))
	for m := 1; m <= s.maxDelayU; m++ {
		y = y.Oplus(s.provider.D(k, m).Apply(s.hu[m-1]))
	}

	// Shift histories.
	if s.maxDelayX > 0 {
		copy(s.hx[1:], s.hx[:len(s.hx)-1])
		s.hx[0] = x.Clone()
	}
	if s.maxDelayU > 0 {
		copy(s.hu[1:], s.hu[:len(s.hu)-1])
		s.hu[0] = u.Clone()
	}
	s.k++
	return x, y, nil
}

// Reset clears the histories back to ε and rewinds k to zero.
func (s *System) Reset() {
	for i := range s.hx {
		s.hx[i] = NewVector(s.nx)
	}
	for i := range s.hu {
		s.hu[i] = NewVector(s.nu)
	}
	s.k = 0
}
