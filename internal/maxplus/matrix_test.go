package maxplus

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// genMatrix draws an n×n matrix with ~half of its entries finite.
func genMatrix(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Intn(2) == 0 {
				m.Set(i, j, T(r.Int63n(1000)))
			}
		}
	}
	return m
}

// Generate lets testing/quick produce random square matrices of size 1..6.
func (*Matrix) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genMatrix(r, 1+r.Intn(6)))
}

func sameSize(ms ...*Matrix) bool {
	for _, m := range ms[1:] {
		if m.Rows() != ms[0].Rows() || m.Cols() != ms[0].Cols() {
			return false
		}
	}
	return true
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != Epsilon {
		t.Fatal("new matrix not ε-filled")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != Epsilon {
		t.Fatal("Clone aliases storage")
	}
}

func TestMatrixPanicsOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestMatrixPanicsOnBadDims(t *testing.T) {
	cases := []func(){
		func() { NewMatrix(-1, 2) },
		func() { NewMatrix(2, 2).Oplus(NewMatrix(3, 3)) },
		func() { NewMatrix(2, 3).Otimes(NewMatrix(2, 3)) },
		func() { NewMatrix(2, 3).Power(2) },
		func() { NewMatrix(2, 2).Power(-1) },
		func() { NewMatrix(2, 3).Star() },
		func() { NewMatrix(2, 3).Apply(NewVector(2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestIdentityIsNeutral(t *testing.T) {
	if err := quick.Check(func(m *Matrix) bool {
		id := Identity(m.Rows())
		return m.Otimes(id).Equal(m) && id.Otimes(m).Equal(m)
	}, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixOtimesAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(5)
		a, b, c := genMatrix(r, n), genMatrix(r, n), genMatrix(r, n)
		left := a.Otimes(b).Otimes(c)
		right := a.Otimes(b.Otimes(c))
		if !left.Equal(right) {
			t.Fatalf("⊗ not associative:\n%v%v%v", a, b, c)
		}
	}
}

func TestMatrixDistributive(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(5)
		a, b, c := genMatrix(r, n), genMatrix(r, n), genMatrix(r, n)
		left := a.Otimes(b.Oplus(c))
		right := a.Otimes(b).Oplus(a.Otimes(c))
		if !left.Equal(right) || !sameSize(left, right) {
			t.Fatalf("⊗ does not distribute over ⊕")
		}
	}
}

func TestApplyMatchesOtimes(t *testing.T) {
	// m.Apply(v) must equal treating v as an n×1 matrix.
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(5)
		m := genMatrix(r, n)
		v := NewVector(n)
		for j := range v {
			if r.Intn(4) > 0 {
				v[j] = T(r.Int63n(1000))
			}
		}
		col := NewMatrix(n, 1)
		for j := range v {
			col.Set(j, 0, v[j])
		}
		want := m.Otimes(col)
		got := m.Apply(v)
		for j := range v {
			if got[j] != want.At(j, 0) {
				t.Fatalf("Apply mismatch at %d: %v vs %v", j, got[j], want.At(j, 0))
			}
		}
	}
}

func TestPower(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 3)
	m.Set(1, 0, 4)
	p0 := m.Power(0)
	if !p0.Equal(Identity(2)) {
		t.Fatal("m^0 != I")
	}
	p2 := m.Power(2)
	if p2.At(0, 0) != 7 || p2.At(1, 1) != 7 {
		t.Fatalf("m^2 = %v", p2)
	}
	p3 := m.Power(3)
	if !p3.Equal(m.Otimes(m).Otimes(m)) {
		t.Fatal("m^3 mismatch")
	}
}

func TestNilpotent(t *testing.T) {
	// Strictly upper triangular matrices are nilpotent.
	m := NewMatrix(3, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 2)
	if !m.IsNilpotent() {
		t.Fatal("upper triangular matrix should be nilpotent")
	}
	// A self loop is not.
	m.Set(2, 2, 0)
	if m.IsNilpotent() {
		t.Fatal("matrix with diagonal entry should not be nilpotent")
	}
	// Non-square is never nilpotent by convention.
	if NewMatrix(2, 3).IsNilpotent() {
		t.Fatal("non-square reported nilpotent")
	}
}

func TestStarOfNilpotent(t *testing.T) {
	// For the chain 0 -> 1 -> 2 with weights 5 and 2:
	// A*[2][0] must be 7 (path), diagonal must be e.
	m := NewMatrix(3, 3)
	m.Set(1, 0, 5) // arc 0->1: X1 depends on X0 (+5)
	m.Set(2, 1, 2)
	s := m.Star()
	if s.At(0, 0) != E || s.At(1, 1) != E || s.At(2, 2) != E {
		t.Fatalf("star diagonal not e:\n%v", s)
	}
	if s.At(1, 0) != 5 || s.At(2, 1) != 2 || s.At(2, 0) != 7 {
		t.Fatalf("star paths wrong:\n%v", s)
	}
}

func TestStarSolvesImplicitEquation(t *testing.T) {
	// x = A⊗x ⊕ b has least solution x = A*⊗b for nilpotent A.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(5)
		a := NewMatrix(n, n)
		// Random strictly lower-triangular (nilpotent) matrix.
		for row := 0; row < n; row++ {
			for col := 0; col < row; col++ {
				if r.Intn(2) == 0 {
					a.Set(row, col, T(r.Int63n(100)))
				}
			}
		}
		b := NewVector(n)
		for j := range b {
			b[j] = T(r.Int63n(1000))
		}
		x := a.Star().Apply(b)
		// Verify x = A⊗x ⊕ b.
		want := a.Apply(x).Oplus(b)
		if !x.Equal(want) {
			t.Fatalf("star solution does not satisfy fixpoint\nA=\n%vb=%v\nx=%v\nwant=%v", a, b, x, want)
		}
	}
}

func TestStarDivergencePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1) // positive circuit of weight 2
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for diverging star")
		}
	}()
	m.Star()
}

func TestStarAllowsZeroWeightCircuit(t *testing.T) {
	// A circuit of weight exactly 0 (e) does not diverge.
	m := NewMatrix(2, 2)
	m.Set(0, 1, 0)
	m.Set(1, 0, 0)
	s := m.Star()
	if s.At(0, 1) != 0 || s.At(1, 0) != 0 {
		t.Fatalf("star of zero-circuit wrong:\n%v", s)
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 4)
	s := m.String()
	if !strings.Contains(s, "4") || !strings.Contains(s, "ε") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMatrixEqualDifferentDims(t *testing.T) {
	if NewMatrix(1, 2).Equal(NewMatrix(2, 1)) {
		t.Fatal("matrices of different dims reported equal")
	}
}
