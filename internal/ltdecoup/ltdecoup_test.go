package ltdecoup

import (
	"testing"

	"dyncomp/internal/baseline"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
	"dyncomp/internal/zoo"
)

func TestQuantumTradeoff(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 400, Period: 900, Seed: 6}
	bt := observe.NewTrace("baseline")
	bres, err := baseline.Run(zoo.Didactic(spec), baseline.Options{Trace: bt})
	if err != nil {
		t.Fatal(err)
	}

	type point struct {
		quantum int64
		err     float64
		acts    int64
	}
	var pts []point
	for _, q := range []int64{100, 10_000, 1_000_000} {
		lt := observe.NewTrace("lt")
		lres, err := Run(zoo.Didactic(spec), Options{Quantum: sim.Time(q), Trace: lt})
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, point{
			quantum: q,
			err:     observe.MeanAbsInstantError(bt, lt),
			acts:    lres.Stats.Activations,
		})
	}
	// Larger quanta must not increase kernel work and must not improve
	// accuracy; the extremes must differ clearly in both dimensions.
	for i := 1; i < len(pts); i++ {
		if pts[i].acts > pts[i-1].acts {
			t.Fatalf("quantum %d uses more activations (%d) than quantum %d (%d)",
				pts[i].quantum, pts[i].acts, pts[i-1].quantum, pts[i-1].acts)
		}
	}
	if pts[len(pts)-1].err <= pts[0].err {
		t.Fatalf("error did not grow with quantum: %+v", pts)
	}
	if pts[len(pts)-1].acts >= bres.Stats.Activations {
		t.Fatalf("large quantum saved no events: %d vs baseline %d",
			pts[len(pts)-1].acts, bres.Stats.Activations)
	}
	if pts[0].err == 0 {
		// Even small quanta lose the rendezvous backpressure; with a
		// backpressured workload (period 900 < service time) some error
		// must appear.
		t.Fatalf("loosely-timed run is unexpectedly exact: %+v", pts)
	}
}

func TestTokenCountsPreserved(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 300, Period: 900, Seed: 2}
	lt := observe.NewTrace("lt")
	if _, err := Run(zoo.Didactic(spec), Options{Quantum: 50_000, Trace: lt}); err != nil {
		t.Fatal(err)
	}
	// Functional behaviour (token counts, ordering) survives decoupling;
	// only timing degrades.
	for _, ch := range []string{"M1", "M2", "M3", "M4", "M5", "M6"} {
		xs := lt.Instants(ch)
		if len(xs) != 300 {
			t.Fatalf("%s: %d transfers, want 300", ch, len(xs))
		}
		for k := 1; k < len(xs); k++ {
			if xs[k] < xs[k-1] {
				t.Fatalf("%s: instants out of order at %d", ch, k)
			}
		}
	}
}

func TestRejectsBadQuantum(t *testing.T) {
	if _, err := Run(zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 1, Seed: 1}), Options{Quantum: 0}); err == nil {
		t.Fatal("expected error for zero quantum")
	}
}
