// Package ltdecoup emulates the loosely-timed (TLM-LT) coding style with
// temporal decoupling that Section I of the paper discusses as the
// standard way to reduce simulation events — and criticises for its
// accuracy loss: "too large a [global quantum] value can lead to degraded
// timing accuracy because delays due to access conflicts to shared
// resources are not simulated."
//
// Each function process runs ahead on a local clock and synchronizes with
// the kernel only when it runs more than the global quantum ahead.
// Cross-process timestamps are quantized to the quantum grid, and writers
// do not block on rendezvous backpressure — the two classic sources of
// loosely-timed inaccuracy. The result is a knob: larger quanta save
// events (speed) and distort evolution instants (accuracy), which the
// benchmarks compare against the dynamic computation method's exact
// results.
package ltdecoup

import (
	"fmt"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// Options configures a loosely-timed run.
type Options struct {
	// Quantum is the temporal decoupling quantum in ticks; processes sync
	// with the kernel when their local clock runs further ahead. Must be
	// positive.
	Quantum sim.Time
	// Trace records the (approximate) evolution instants.
	Trace *observe.Trace
	// Limit bounds simulation time; zero means run to completion.
	Limit sim.Time
}

// Result reports a completed run.
type Result struct {
	Stats sim.Stats
	Trace *observe.Trace
}

// Run simulates the architecture with temporal decoupling.
func Run(a *model.Architecture, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if opts.Quantum <= 0 {
		return nil, fmt.Errorf("ltdecoup: quantum must be positive, got %d", opts.Quantum)
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}
	k := sim.New()
	b := &builder{
		arch:    a,
		kernel:  k,
		quantum: opts.Quantum,
		trace:   opts.Trace,
		chans:   map[*model.Channel]*ltChan{},
	}
	b.build()
	if err := k.Run(limit); err != nil {
		return nil, err
	}
	return &Result{Stats: k.Stats(), Trace: opts.Trace}, nil
}

// ltChan is a decoupled channel: writes never block (the rendezvous
// backpressure is lost) and carry quantized local timestamps.
type ltChan struct {
	name  string
	buf   []stamped
	ev    *sim.Event
	trace *observe.Trace
	k     int
}

type stamped struct {
	tok model.Token
	ts  sim.Time
}

type builder struct {
	arch    *model.Architecture
	kernel  *sim.Kernel
	quantum sim.Time
	trace   *observe.Trace
	chans   map[*model.Channel]*ltChan
}

// quantize rounds a cross-process timestamp up to the quantum grid.
func (b *builder) quantize(t sim.Time) sim.Time {
	q := b.quantum
	return (t + q - 1) / q * q
}

func (b *builder) build() {
	for _, ch := range b.arch.Channels {
		b.chans[ch] = &ltChan{name: ch.Name, ev: b.kernel.NewEvent(ch.Name), trace: b.trace}
	}
	// Per-resource end-of-turn local timestamps for the rotation gate.
	ends := map[*model.Resource]map[int]sim.Time{}
	endEv := map[*model.Resource]*sim.Event{}
	for _, r := range b.arch.Resources {
		ends[r] = map[int]sim.Time{}
		endEv[r] = b.kernel.NewEvent("turn:" + r.Name)
	}

	for _, f := range b.arch.Functions {
		fn := f
		b.kernel.Spawn(fn.Name, func(p *sim.Proc) {
			b.runFunction(p, fn, ends[fn.Resource], endEv[fn.Resource])
		})
	}
	for _, s := range b.arch.Sources {
		src := s
		ch := b.chans[s.Ch]
		b.kernel.Spawn(src.Name, func(p *sim.Proc) {
			for k := 0; k < src.Count; k++ {
				u := src.Schedule(k)
				p.WaitUntil(sim.Time(u))
				tok := src.Tokens(k)
				tok.K = k
				ch.push(tok, p.Now())
			}
		})
	}
	for _, s := range b.arch.Sinks {
		ch := b.chans[s.Ch]
		b.kernel.Spawn(s.Name, func(p *sim.Proc) {
			local := p.Now()
			for {
				_, local = ch.pop(p, local)
			}
		})
	}
}

func (c *ltChan) push(tok model.Token, ts sim.Time) {
	c.buf = append(c.buf, stamped{tok: tok, ts: ts})
	c.ev.Notify()
}

// pop consumes the next token, advancing the caller's local clock to the
// (already quantized) producer timestamp and recording the approximate
// transfer instant.
func (c *ltChan) pop(p *sim.Proc, local sim.Time) (model.Token, sim.Time) {
	for len(c.buf) == 0 {
		// Flush local time before blocking: the kernel must not see this
		// process in the past. A push may land during the flush, so
		// re-check before committing to an event wait.
		if local > p.Now() {
			p.WaitUntil(local)
			continue
		}
		p.WaitEvent(c.ev)
	}
	it := c.buf[0]
	c.buf = c.buf[1:]
	if it.ts > local {
		local = it.ts
	}
	if c.trace != nil {
		c.trace.RecordInstant(c.name, maxplus.T(local))
	}
	c.k++
	return it.tok, local
}

func (b *builder) runFunction(p *sim.Proc, f *model.Function, ends map[int]sim.Time, endEv *sim.Event) {
	m := len(f.Resource.Rotation)
	c := f.Resource.Concurrency
	if c < 1 {
		c = 1
	}
	if c > m {
		c = m
	}
	var cur model.Token
	local := p.Now()
	for k := 0; ; k++ {
		turn := k*m + f.RotIndex
		// Rotation gate against recorded local end timestamps; blocked
		// only until the predecessor has been scheduled at all.
		if gate := turn - c; gate >= 0 {
			for {
				end, ok := ends[gate]
				if ok {
					if end > local {
						local = end
					}
					delete(ends, gate)
					break
				}
				if local > p.Now() {
					p.WaitUntil(local)
					continue // the end may have been recorded meanwhile
				}
				p.WaitEvent(endEv)
			}
		}
		for _, st := range f.Body {
			switch s := st.(type) {
			case model.Read:
				cur, local = b.chans[s.Ch].pop(p, local)
			case model.Write:
				// Temporal decoupling: the writer does not wait for the
				// reader; the timestamp is quantized at the boundary.
				b.chans[s.Ch].push(cur, b.quantize(local))
			case model.Exec:
				dur := f.Resource.DurationOf(s.Cost(cur))
				if b.trace != nil {
					b.trace.RecordActivity(observe.Activity{
						Resource: f.Resource.Name,
						Label:    s.Label,
						K:        k,
						Start:    maxplus.T(local),
						End:      maxplus.Otimes(maxplus.T(local), dur),
						Ops:      s.Cost(cur).Ops,
					})
				}
				local += sim.Time(dur)
				// Sync with the kernel only past the quantum.
				if local-p.Now() >= b.quantum {
					p.WaitUntil(local)
				}
			}
		}
		ends[turn] = b.quantize(local)
		endEv.Notify()
	}
}
