package baseline

import (
	"context"
	"time"

	"dyncomp/internal/engine"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// refEngine adapts the event-driven reference executor to the uniform
// engine contract. It needs no derivation, so Options.Derive and
// Options.Cache are ignored.
type refEngine struct{}

func (refEngine) Name() string { return "reference" }

func (refEngine) Run(ctx context.Context, a *model.Architecture, opts engine.Options) (*engine.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var trace *observe.Trace
	if opts.Record {
		trace = observe.NewTrace(a.Name + "/reference")
	}
	begin := time.Now()
	res, err := Run(a, Options{
		Trace:     trace,
		Limit:     sim.Time(opts.LimitNs),
		IterLimit: opts.IterLimit,
	})
	if err != nil {
		return nil, err
	}
	if opts.Progress != nil {
		opts.Progress(0, 0) // the kernel does not count iterations
	}
	return &engine.Result{
		Trace:       trace,
		Activations: res.Stats.Activations,
		Events:      res.Stats.Events(),
		FinalTimeNs: int64(res.Stats.FinalTime),
		WallNs:      time.Since(begin).Nanoseconds(),
	}, nil
}

func init() { engine.Register(refEngine{}) }
