package baseline

import (
	"testing"

	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/zoo"
)

// didacticDirect evaluates the paper's equations (1)-(6) literally with
// the zoo's duration streams, as the ground truth for the event-driven
// executor.
func didacticDirect(n int, seed int64, u func(k int) maxplus.T) [][6]maxplus.T {
	out := make([][6]maxplus.T, 0, n)
	prev := [6]maxplus.T{maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon, maxplus.Epsilon}
	for k := 0; k < n; k++ {
		ti1, tj1, ti2, ti3, tj3, ti4 := zoo.DidacticDurations(seed, k)
		var x [6]maxplus.T
		x[0] = maxplus.Oplus(u(k), prev[3])
		x[1] = maxplus.Oplus(maxplus.Otimes(x[0], ti1), prev[4])
		x[2] = maxplus.Oplus(maxplus.Otimes(x[1], tj1), prev[3])
		x[3] = maxplus.OplusN(maxplus.Otimes(x[2], ti2), maxplus.Otimes(x[1], ti3), prev[4])
		x[4] = maxplus.Oplus(maxplus.Otimes(x[3], tj3), prev[5])
		x[5] = maxplus.Otimes(x[4], ti4)
		out = append(out, x)
		prev = x
	}
	return out
}

func runDidactic(t *testing.T, spec zoo.DidacticSpec) *observe.Trace {
	t.Helper()
	trace := observe.NewTrace("baseline")
	res, err := Run(zoo.Didactic(spec), Options{Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Activations == 0 {
		t.Fatal("no activations recorded")
	}
	return trace
}

// The core semantic test: the event-driven executor must reproduce the
// paper's equations (1)-(6) instant for instant, for both a periodic and
// an eager source.
func TestBaselineMatchesPaperEquations(t *testing.T) {
	cases := []struct {
		name   string
		period maxplus.T
	}{
		{"periodic-slow", 2000}, // input-limited
		{"periodic-fast", 300},  // backpressured
		{"eager", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 400
			spec := zoo.DidacticSpec{Tokens: n, Period: tc.period, Seed: 7}
			trace := runDidactic(t, spec)
			u := func(k int) maxplus.T { return maxplus.T(int64(k) * int64(tc.period)) }
			want := didacticDirect(n, spec.Seed, u)
			chans := []string{"M1", "M2", "M3", "M4", "M5", "M6"}
			for i, ch := range chans {
				got := trace.Instants(ch)
				if len(got) != n {
					t.Fatalf("%s: %d instants recorded, want %d", ch, len(got), n)
				}
				for k := 0; k < n; k++ {
					if got[k] != want[k][i] {
						t.Fatalf("%s(%d) = %v, want %v (period %d)", ch, k, got[k], want[k][i], tc.period)
					}
				}
			}
		})
	}
}

func TestBaselineActivitiesMatchEquationTimings(t *testing.T) {
	const n = 50
	spec := zoo.DidacticSpec{Tokens: n, Period: 2000, Seed: 3}
	trace := runDidactic(t, spec)
	u := func(k int) maxplus.T { return maxplus.T(int64(k) * 2000) }
	want := didacticDirect(n, spec.Seed, u)

	// Ti1 runs on P1 from xM1(k) for Ti1(k).
	var ti1Acts []observe.Activity
	for _, a := range trace.Activities("P1") {
		if a.Label == "Ti1" {
			ti1Acts = append(ti1Acts, a)
		}
	}
	if len(ti1Acts) != n {
		t.Fatalf("%d Ti1 activities, want %d", len(ti1Acts), n)
	}
	for k, a := range ti1Acts {
		ti1, _, _, _, _, _ := zoo.DidacticDurations(spec.Seed, k)
		if a.Start != want[k][0] {
			t.Fatalf("Ti1(%d) starts at %v, want xM1=%v", k, a.Start, want[k][0])
		}
		if a.End != maxplus.Otimes(want[k][0], ti1) {
			t.Fatalf("Ti1(%d) ends at %v, want %v", k, a.End, maxplus.Otimes(want[k][0], ti1))
		}
		if a.K != k {
			t.Fatalf("Ti1 activity K=%d, want %d", a.K, k)
		}
	}
	// Ti4 runs on P2 from xM5(k).
	var ti4Acts []observe.Activity
	for _, a := range trace.Activities("P2") {
		if a.Label == "Ti4" {
			ti4Acts = append(ti4Acts, a)
		}
	}
	if len(ti4Acts) != n {
		t.Fatalf("%d Ti4 activities, want %d", len(ti4Acts), n)
	}
	for k, a := range ti4Acts {
		if a.Start != want[k][4] {
			t.Fatalf("Ti4(%d) starts at %v, want xM5=%v", k, a.Start, want[k][4])
		}
	}
}

// With unbounded concurrency on P2 but a serialized P1, M1 transfers must
// wait for F2's previous completion — the "limited concurrency" behaviour
// the paper derives equation (1) from.
func TestBaselineProcessorSerialization(t *testing.T) {
	const n = 30
	spec := zoo.DidacticSpec{Tokens: n, Period: 0, Seed: 11} // eager source
	trace := runDidactic(t, spec)
	m1 := trace.Instants("M1")
	m4 := trace.Instants("M4")
	for k := 1; k < n; k++ {
		if m1[k] < m4[k-1] {
			t.Fatalf("M1(%d)=%v before M4(%d)=%v: processor rotation violated", k, m1[k], k-1, m4[k-1])
		}
	}
}

func TestBaselineDeterministic(t *testing.T) {
	spec := zoo.DidacticSpec{Tokens: 200, Period: 500, Seed: 5}
	t1 := runDidactic(t, spec)
	t2 := runDidactic(t, spec)
	if err := observe.CompareInstants(t1, t2); err != nil {
		t.Fatalf("two identical runs differ: %v", err)
	}
}

func TestBaselineChainRuns(t *testing.T) {
	for _, stages := range []int{2, 3} {
		a := zoo.DidacticChain(stages, zoo.DidacticSpec{Tokens: 100, Period: 1500, Seed: 2})
		trace := observe.NewTrace("chain")
		res, err := Run(a, Options{Trace: trace})
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		// The last stage's output must see all tokens.
		lastOut := a.Sinks[0].Ch.Name
		if got := len(trace.Instants(lastOut)); got != 100 {
			t.Fatalf("stages=%d: %d tokens through %s, want 100", stages, got, lastOut)
		}
		// Instants must be strictly ordered per channel.
		for _, label := range trace.Labels() {
			xs := trace.Instants(label)
			for k := 1; k < len(xs); k++ {
				if xs[k] < xs[k-1] {
					t.Fatalf("stages=%d: %s(%d)=%v < %s(%d)=%v", stages, label, k, xs[k], label, k-1, xs[k-1])
				}
			}
		}
		if res.Stats.Activations == 0 {
			t.Fatal("no activations")
		}
	}
}

func TestBaselineFIFOVariant(t *testing.T) {
	const n = 120
	spec := zoo.DidacticSpec{Tokens: n, Period: 300, Seed: 9, UseFIFO: true}
	a := zoo.Didactic(spec)
	trace := observe.NewTrace("fifo")
	if _, err := Run(a, Options{Trace: trace}); err != nil {
		t.Fatal(err)
	}
	// Each channel records both write and read instants.
	for _, ch := range []string{"M1", "M6"} {
		w := trace.Instants(ch + ".w")
		r := trace.Instants(ch + ".r")
		if len(w) != n || len(r) != n {
			t.Fatalf("%s: %d writes, %d reads, want %d", ch, len(w), len(r), n)
		}
		for k := 0; k < n; k++ {
			if r[k] < w[k] {
				t.Fatalf("%s: read(%d)=%v before write=%v", ch, k, r[k], w[k])
			}
		}
		// Backpressure: write k waits for read k-capacity (capacity 2).
		for k := 2; k < n; k++ {
			if w[k] < r[k-2] {
				t.Fatalf("%s: write(%d)=%v violates capacity backpressure (read(%d)=%v)", ch, k, w[k], k-2, r[k-2])
			}
		}
	}
}

func TestBaselinePipelineThroughput(t *testing.T) {
	a := zoo.Pipeline(zoo.PipelineSpec{XSize: 6, Tokens: 80, Period: 0, Seed: 4})
	trace := observe.NewTrace("pipe")
	if _, err := Run(a, Options{Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if got := len(trace.Instants("C5")); got != 80 {
		t.Fatalf("%d tokens through C5, want 80", got)
	}
}

func TestBaselineTimeLimit(t *testing.T) {
	a := zoo.Didactic(zoo.DidacticSpec{Tokens: 1000, Period: 1000, Seed: 1})
	trace := observe.NewTrace("limited")
	res, err := Run(a, Options{Trace: trace, Limit: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalTime != 50_000 {
		t.Fatalf("final time %d, want 50000", res.Stats.FinalTime)
	}
	if n := len(trace.Instants("M1")); n >= 1000 || n == 0 {
		t.Fatalf("M1 transfers = %d, expected partial progress", n)
	}
}

func TestBaselineRejectsInvalidArchitecture(t *testing.T) {
	a := model.NewArchitecture("broken")
	a.AddChannel("M", model.Rendezvous, 0)
	if _, err := Run(a, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestGateSkipped(t *testing.T) {
	a := zoo.Didactic(zoo.DidacticSpec{Tokens: 1, Period: 0, Seed: 0})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*model.Function{}
	for _, f := range a.Functions {
		byName[f.Name] = f
	}
	// F2 reads M3 which F1 (its rotation predecessor) writes last: the
	// gate is realized by the rendezvous.
	if !GateSkipped(byName["F2"]) {
		t.Fatal("F2's gate should be skipped")
	}
	// F1's gate is F2's previous-iteration end: explicit.
	if GateSkipped(byName["F1"]) {
		t.Fatal("F1's gate should not be skipped")
	}
	// Hardware functions gate on their own previous iteration.
	if GateSkipped(byName["F3"]) || GateSkipped(byName["F4"]) {
		t.Fatal("hardware gates should not be skipped")
	}
}
