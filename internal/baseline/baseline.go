// Package baseline is the event-driven reference executor: it compiles an
// architecture model onto the discrete-event kernel with one simulation
// process per application function, exhibiting every relation among
// functions as kernel events — the "first model" that Section V of the
// paper compares against.
//
// Its semantics are exactly those of the temporal-dependency-graph
// derivation (internal/derive): rendezvous/FIFO transfer instants, static
// rotation of mapped functions with windowed concurrency, data-dependent
// execution durations. The recorded evolution instants of the two engines
// must agree bit-exact; integration tests enforce this.
package baseline

import (
	"fmt"

	"dyncomp/internal/chanrt"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/model"
	"dyncomp/internal/observe"
	"dyncomp/internal/sim"
)

// Options configures a baseline run.
type Options struct {
	// Trace, when non-nil, records evolution instants and resource
	// activity. Recording costs time; benchmark runs leave it nil.
	Trace *observe.Trace
	// Limit bounds simulation time; zero means run until the event queue
	// drains (all source tokens consumed).
	Limit sim.Time
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
}

// Result reports a completed run.
type Result struct {
	Stats sim.Stats
	Trace *observe.Trace
}

// Run simulates the architecture event-by-event until every source is
// exhausted and the pipeline has drained. The architecture must validate.
func Run(a *model.Architecture, opts Options) (*Result, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	limit := opts.Limit
	if limit <= 0 {
		limit = sim.Forever
	}

	k := sim.New()
	if _, err := Attach(k, a, AttachOptions{Trace: opts.Trace, IterLimit: opts.IterLimit}); err != nil {
		return nil, err
	}
	if err := k.Run(limit); err != nil {
		return nil, err
	}
	return &Result{Stats: k.Stats(), Trace: opts.Trace}, nil
}

// AttachOptions configures Attach.
type AttachOptions struct {
	// Trace records instants and activities of the attached processes.
	Trace *observe.Trace
	// Skip excludes functions from spawning (their channels still get
	// runtimes unless provided). Partial abstraction replaces the skipped
	// group with an equivalent model.
	Skip func(f *model.Function) bool
	// Chans supplies pre-created runtimes for specific channels (boundary
	// channels of a partial abstraction); missing channels get fresh
	// runtimes recording into Trace.
	Chans map[*model.Channel]chanrt.RT
	// SkipChannel excludes channels entirely (internal channels of an
	// abstracted group).
	SkipChannel func(ch *model.Channel) bool

	// IterOffset resumes the evolution at a later iteration: sources emit
	// tokens IterOffset, IterOffset+1, ... (with their absolute schedule
	// instants), and recorded activities carry the global iteration index.
	// Constraints reaching back across the resume point must be supplied
	// through Floor/SourceFloor; the adaptive engine computes them from
	// the temporal dependency graph and the recorded history.
	IterOffset int
	// IterLimit, when positive, stops every source after token IterLimit-1,
	// bounding the segment to iterations [IterOffset, IterLimit).
	IterLimit int
	// Floor, when non-nil, gives an absolute lower bound on the instant at
	// which function f may engage its stmt-th statement of global
	// iteration k (zero: no bound). It realizes the delayed dependencies
	// of a resumed evolution whose history predates this kernel: waiting
	// until the floor before a read or write adds exactly the historical
	// term to the (max,+) readiness expression of that transfer.
	Floor func(f *model.Function, stmt, k int) sim.Time
	// SourceFloor is Floor for source emissions (e.g. the backpressure a
	// source-fed FIFO carried over from before the resume point).
	SourceFloor func(s *model.Source, k int) sim.Time
}

// Runtime exposes the channel runtimes created by Attach.
type Runtime struct {
	Chans map[*model.Channel]chanrt.RT
}

// Attach spawns event-driven processes for the architecture's functions,
// sources and sinks onto an existing kernel. The architecture must have
// been validated. Partial setups (hybrid models) use Skip/Chans to carve
// out the abstracted group.
func Attach(k *sim.Kernel, a *model.Architecture, opts AttachOptions) (*Runtime, error) {
	b := &builder{arch: a, kernel: k, opts: opts, trace: opts.Trace, chans: map[*model.Channel]chanrt.RT{}}
	for ch, rt := range opts.Chans {
		b.chans[ch] = rt
	}
	if err := b.build(opts); err != nil {
		return nil, err
	}
	return &Runtime{Chans: b.chans}, nil
}

type builder struct {
	arch   *model.Architecture
	kernel *sim.Kernel
	opts   AttachOptions
	trace  *observe.Trace
	chans  map[*model.Channel]chanrt.RT
}

func (b *builder) build(opts AttachOptions) error {
	for _, ch := range b.arch.Channels {
		if _, ok := b.chans[ch]; ok {
			continue
		}
		if opts.SkipChannel != nil && opts.SkipChannel(ch) {
			continue
		}
		b.chans[ch] = chanrt.New(b.kernel, ch, b.trace)
	}

	resources := map[*model.Resource]*resourceRT{}
	for _, f := range b.arch.Functions {
		if opts.Skip != nil && opts.Skip(f) {
			continue
		}
		if _, ok := resources[f.Resource]; !ok {
			resources[f.Resource] = newResourceRT(b.kernel, f.Resource)
		}
		execs := make(map[int]*model.ExecInfo)
		for i := range f.Body {
			if _, ok := f.Body[i].(model.Exec); ok {
				info, err := b.arch.ExecInfoOf(f, i)
				if err != nil {
					return err
				}
				execs[i] = info
			}
		}
		fn := f
		rt := resources[f.Resource]
		b.kernel.Spawn(fn.Name, func(p *sim.Proc) {
			b.runFunction(p, fn, rt, execs)
		})
	}

	for _, s := range b.arch.Sources {
		src := s
		ch := b.chans[s.Ch]
		if ch == nil {
			return fmt.Errorf("baseline: source %q has no channel runtime", s.Name)
		}
		first, last := opts.IterOffset, src.Count
		if opts.IterLimit > 0 && opts.IterLimit < last {
			last = opts.IterLimit
		}
		floor := opts.SourceFloor
		b.kernel.Spawn(src.Name, func(p *sim.Proc) {
			for k := first; k < last; k++ {
				u := src.Schedule(k)
				if u.IsEpsilon() {
					panic(fmt.Sprintf("baseline: source %q schedule(%d) is ε", src.Name, k))
				}
				p.WaitUntil(sim.Time(u))
				if floor != nil {
					if fl := floor(src, k); fl > p.Now() {
						p.WaitUntil(fl)
					}
				}
				tok := src.Tokens(k)
				tok.K = k
				ch.Write(p, tok)
			}
		})
	}

	for _, s := range b.arch.Sinks {
		ch := b.chans[s.Ch]
		if ch == nil {
			return fmt.Errorf("baseline: sink %q has no channel runtime", s.Name)
		}
		b.kernel.Spawn(s.Name, func(p *sim.Proc) {
			for {
				ch.Read(p)
			}
		})
	}
	return nil
}

// runFunction executes one application function: acquire the turn in the
// resource rotation, run the body statements, release the turn.
func (b *builder) runFunction(p *sim.Proc, f *model.Function, rt *resourceRT, execs map[int]*model.ExecInfo) {
	m := len(f.Resource.Rotation)
	skip := GateSkipped(f)
	off := b.opts.IterOffset
	floor := b.opts.Floor
	var cur model.Token
	for k := 0; ; k++ {
		gk := off + k
		turn := k*m + f.RotIndex
		rt.waitTurn(p, turn, skip)
		for i, st := range f.Body {
			if floor != nil {
				if fl := floor(f, i, gk); fl > p.Now() {
					p.WaitUntil(fl)
				}
			}
			switch s := st.(type) {
			case model.Read:
				cur = b.chans[s.Ch].Read(p)
			case model.Write:
				b.chans[s.Ch].Write(p, cur)
			case model.Exec:
				info := execs[i]
				load := s.Cost(cur)
				dur := f.Resource.DurationOf(load)
				if b.trace != nil {
					now := maxplus.T(p.Now())
					b.trace.RecordActivity(observe.Activity{
						Resource: f.Resource.Name,
						Label:    info.Label,
						K:        gk,
						Start:    now,
						End:      maxplus.Otimes(now, dur),
						Ops:      load.Ops,
					})
				}
				if dur > 0 {
					p.Wait(sim.Time(dur))
				}
			}
		}
		// Bodies ending in an Exec have no transfer marking the turn end;
		// record the auxiliary end instant for comparison with the
		// equivalent model.
		if b.trace != nil {
			if _, ok := f.Body[len(f.Body)-1].(model.Exec); ok {
				b.trace.RecordInstant("end:"+f.Name, maxplus.T(p.Now()))
			}
		}
		rt.endTurn(turn, f.RotIndex)
	}
}
