package baseline

import (
	"dyncomp/internal/model"
	"dyncomp/internal/sim"
)

// resourceRT enforces the static schedule of a resource: its mapped
// functions take turns in rotation order, and with concurrency c the
// global turn t may begin only once turn t-c has ended. c = 1 serializes
// the rotation (a processor); c = len(rotation) leaves each function gated
// only by its own previous iteration (dedicated hardware).
//
// One case must not be enforced by an explicit wait: when the gating turn
// belongs to the same iteration and its function's last statement is a
// rendezvous write into this function's first read (the F1→F2 handoff of
// the didactic example), the previous turn can only end once this function
// arrives at the rendezvous. There the serialization is realized by the
// rendezvous itself — the transfer instant is simultaneously the
// predecessor's turn end and this function's turn start, which is exactly
// what equation (3) of the paper expresses — and an explicit wait would
// deadlock. GateSkipped detects that case; the temporal-dependency-graph
// derivation applies the identical rule (its self-arc elimination), so
// both engines agree.
type resourceRT struct {
	r     *model.Resource
	ended map[int]bool
	ev    *sim.Event
	// skipStore[j] reports that the ends of rotation[j]'s turns are never
	// consumed, because their consumer skips its gate.
	skipStore []bool
}

func newResourceRT(k *sim.Kernel, r *model.Resource) *resourceRT {
	m := len(r.Rotation)
	rt := &resourceRT{r: r, ended: map[int]bool{}, ev: k.NewEvent("turn:" + r.Name), skipStore: make([]bool, m)}
	for j := 0; j < m; j++ {
		consumer := r.Rotation[(j+effectiveConcurrency(r))%m]
		rt.skipStore[j] = GateSkipped(consumer)
	}
	return rt
}

// effectiveConcurrency clamps the resolved concurrency into [1, m].
func effectiveConcurrency(r *model.Resource) int {
	c := r.Concurrency
	if c < 1 {
		c = 1
	}
	if m := len(r.Rotation); c > m {
		c = m
	}
	return c
}

// GateSkipped reports whether f's rotation gate must be realized through
// the rendezvous handoff instead of an explicit wait: the gating turn is
// in the same iteration (delay 0) and its function's last statement writes
// the rendezvous channel that f reads first.
func GateSkipped(f *model.Function) bool {
	r := f.Resource
	m := len(r.Rotation)
	c := effectiveConcurrency(r)
	j := f.RotIndex
	idx, d := j-c, 0
	for idx < 0 {
		idx += m
		d++
	}
	if d != 0 {
		return false
	}
	pred := r.Rotation[idx]
	w, ok := pred.Body[len(pred.Body)-1].(model.Write)
	if !ok || w.Ch.Kind != model.Rendezvous {
		return false
	}
	first, ok := f.Body[0].(model.Read)
	return ok && first.Ch == w.Ch
}

// waitTurn blocks until the gate of global turn t is open.
func (rt *resourceRT) waitTurn(p *sim.Proc, t int, skip bool) {
	if skip {
		return
	}
	gate := t - effectiveConcurrency(rt.r)
	if gate < 0 {
		return
	}
	for !rt.ended[gate] {
		p.WaitEvent(rt.ev)
	}
	delete(rt.ended, gate) // consumed exactly once, by turn gate+c
}

// endTurn marks turn t finished and wakes functions waiting on the gate.
func (rt *resourceRT) endTurn(t int, j int) {
	if rt.skipStore[j] {
		return // the consumer synchronizes through the rendezvous instead
	}
	rt.ended[t] = true
	rt.ev.Notify()
}
