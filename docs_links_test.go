package dyncomp_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links and images: [text](target).
// Reference-style links are not used in this repository.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// TestDocsLinks is the markdown link checker CI runs: every relative
// link in the repository's markdown files must point at a file or
// directory that exists, so the documentation suite cannot rot
// silently. External links (with a scheme) and pure in-page anchors
// are out of scope — nothing here should depend on the network.
func TestDocsLinks(t *testing.T) {
	var files []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		match, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, match...)
	}
	if len(files) < 8 {
		t.Fatalf("only %d markdown files found (%v); glob broken?", len(files), files)
	}

	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		// Fenced code blocks may contain [x](y)-looking text (e.g. shell
		// arrays); strip them before matching.
		content := stripFences(string(raw))
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[0], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked; regexp broken?")
	}
}

// stripFences removes ``` fenced blocks.
func stripFences(s string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteString("\n")
		}
	}
	return out.String()
}
