package dyncomp

import (
	"context"
	"strings"
	"testing"
)

// facadeSpec is a two-parameter single-stage model: 30 periodic tokens
// through one function, final time exactly 29·period + work ns.
const facadeSpec = `{
  "version": 1,
  "name": "facade",
  "parameters": [
    {"name": "period", "default": 900, "values": [700, 800, 900],
     "power": {"scale": 1e5, "exp": -1}},
    {"name": "work", "default": 120, "values": [60, 120],
     "area": {"base": 1, "scale": 0.01}}
  ],
  "channels": [
    {"name": "in", "kind": "rendezvous"},
    {"name": "out", "kind": "rendezvous"}
  ],
  "functions": [
    {"name": "F", "body": [
      {"read": "in"},
      {"exec": {"label": "T", "cost": {"kind": "fixed", "ops": "$work"}}},
      {"write": "out"}
    ]}
  ],
  "resources": [{"name": "P1", "kind": "processor", "ops_per_sec": 1e9}],
  "mapping": [{"resource": "P1", "functions": ["F"]}],
  "sources": [{"name": "src", "channel": "in", "count": 30,
               "schedule": {"kind": "periodic", "period": "$period", "offset": 0}}],
  "sinks": [{"name": "sink", "channel": "out"}]
}`

// A decoded spec builds, runs bit-exact across engines, and survives
// an export → marshal → decode → rebuild round trip.
func TestArchitectureFacadeRoundTrip(t *testing.T) {
	spec, err := DecodeArchitecture([]byte(facadeSpec))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a, err := BuildArchitecture(spec, map[string]int64{"period": 800})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ref, err := Run(context.Background(), "reference", a, EngineOptions{Record: true})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	eq, err := Run(context.Background(), "equivalent", a, EngineOptions{Record: true})
	if err != nil {
		t.Fatalf("equivalent: %v", err)
	}
	if err := CompareTraces(ref.Trace, eq.Trace); err != nil {
		t.Fatalf("engines disagree: %v", err)
	}
	const want = 29*800 + 120
	if eq.FinalTimeNs != want {
		t.Fatalf("final time %d, want %d", eq.FinalTimeNs, want)
	}

	exported, err := ExportArchitecture(a)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	data, err := MarshalArchitecture(exported)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	again, err := DecodeArchitecture(data)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	b, err := BuildArchitecture(again, nil)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	re, err := Run(context.Background(), "equivalent", b, EngineOptions{Record: true})
	if err != nil {
		t.Fatalf("rebuilt run: %v", err)
	}
	if err := CompareTraces(eq.Trace, re.Trace); err != nil {
		t.Fatalf("round trip broke bit-exactness: %v", err)
	}
}

// Facade errors carry the same stable codes the decoder and the HTTP
// layer answer with.
func TestArchitectureFacadeErrorCodes(t *testing.T) {
	if _, err := DecodeArchitecture([]byte(`{"version": 1`)); ArchErrorCode(err) != ArchCodeInvalid {
		t.Fatalf("truncated document: code %q, want %q", ArchErrorCode(err), ArchCodeInvalid)
	}
	if _, err := DecodeArchitecture([]byte(`{"version": 99, "name": "x"}`)); ArchErrorCode(err) != ArchCodeVersion {
		t.Fatalf("future version: code %q, want %q", ArchErrorCode(err), ArchCodeVersion)
	}
	spec, err := DecodeArchitecture([]byte(facadeSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildArchitecture(spec, map[string]int64{"phase": 1}); ArchErrorCode(err) != ArchCodeInvalid {
		t.Fatalf("unknown parameter: code %q, want %q", ArchErrorCode(err), ArchCodeInvalid)
	}
	if _, err := BuildArchitecture(spec, map[string]int64{"period": -5}); ArchErrorCode(err) != ArchCodeInvalid {
		t.Fatalf("invalid binding: code %q, want %q", ArchErrorCode(err), ArchCodeInvalid)
	}
	if ArchErrorCode(nil) != "" {
		t.Fatalf("nil error should have no code")
	}
}

// Optimize explores the spec's declared 3×2 value grid: the surrogate
// search reports the same front brute force does, constraints cut the
// feasible set, and option errors surface as errors, not panics.
func TestOptimizeFacade(t *testing.T) {
	spec, err := DecodeArchitecture([]byte(facadeSpec))
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	exact, err := Optimize(context.Background(), spec, OptimizeOptions{
		Exhaustive: true, Cache: cache,
	})
	if err != nil {
		t.Fatalf("exhaustive: %v", err)
	}
	if exact.GridPoints != 6 || exact.Simulated != 6 || !exact.Converged {
		t.Fatalf("exhaustive run: %+v", exact)
	}
	if len(exact.Front) == 0 {
		t.Fatal("empty front")
	}
	guided, err := Optimize(context.Background(), spec, OptimizeOptions{Cache: cache})
	if err != nil {
		t.Fatalf("guided: %v", err)
	}
	if len(guided.Front) != len(exact.Front) {
		t.Fatalf("guided front has %d points, exhaustive %d", len(guided.Front), len(exact.Front))
	}
	for i := range guided.Front {
		if guided.Front[i].Index != exact.Front[i].Index ||
			guided.Front[i].Objective != exact.Front[i].Objective {
			t.Fatalf("front[%d] differs: %+v vs %+v", i, guided.Front[i], exact.Front[i])
		}
	}

	constrained, err := Optimize(context.Background(), spec, OptimizeOptions{
		Exhaustive:  true,
		Constraints: []OptimizeConstraint{{Metric: MetricPower, Max: 130}},
		Cache:       cache,
	})
	if err != nil {
		t.Fatalf("constrained: %v", err)
	}
	if constrained.Feasible >= exact.Feasible {
		t.Fatalf("power budget cut nothing: %d feasible of %d", constrained.Feasible, exact.Feasible)
	}

	if _, err := Optimize(context.Background(), spec, OptimizeOptions{Objective: "latency"}); err == nil ||
		!strings.Contains(err.Error(), "objective") {
		t.Fatalf("unknown objective: %v", err)
	}
	if _, err := Optimize(context.Background(), spec, OptimizeOptions{
		Constraints: []OptimizeConstraint{{Metric: "joules", Max: 1}},
	}); err == nil || !strings.Contains(err.Error(), "joules") {
		t.Fatalf("unknown constraint metric: %v", err)
	}
}
