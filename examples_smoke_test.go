package dyncomp_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds and runs every examples/* binary: each must
// exit cleanly within its time budget and print something. CI used to
// only compile them; this catches runtime regressions (panics, hangs,
// broken invariant checks that the examples print) too.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running example binaries is not short")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	bindir := t.TempDir()
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command(gobin, "build", "-o", bin, "./"+dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build: %v\n%s", err, out)
			}

			var stdout, stderr bytes.Buffer
			run := exec.Command(bin)
			run.Stdout = &stdout
			run.Stderr = &stderr
			done := make(chan error, 1)
			if err := run.Start(); err != nil {
				t.Fatalf("start: %v", err)
			}
			go func() { done <- run.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("run: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
				}
			case <-time.After(2 * time.Minute):
				run.Process.Kill()
				t.Fatalf("example %s did not finish within 2 minutes", name)
			}
			if stdout.Len() == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
		})
	}
}
