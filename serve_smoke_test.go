package dyncomp_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke builds the dyncomp-serve binary, starts it on a random
// port and exercises the serving layer end to end the way an operator
// would: probe /healthz, evaluate /v1/run twice (the second request
// must be a derive-cache hit), cancel a sweep job mid-flight, and shut
// the process down gracefully with SIGTERM.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("building and running the server binary is not short")
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "dyncomp-serve")
	if out, err := exec.Command(gobin, "build", "-o", bin, "./cmd/dyncomp-serve").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-job-workers", "1", "-sweep-workers", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	exited := false // set once the test consumed the single done value
	defer func() {
		if !exited {
			cmd.Process.Kill()
			<-done
		}
	}()

	// The server prints "listening on <addr>" before serving.
	sc := bufio.NewScanner(stdout)
	var base string
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			base = "http://" + addr
			break
		}
	}
	if base == "" {
		t.Fatalf("no listening line; stderr:\n%s", stderr.String())
	}
	// Keep draining stdout so the process never blocks on a full pipe.
	outRest := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		outRest <- rest.String()
	}()

	if err := waitHTTP(base+"/healthz", 10*time.Second); err != nil {
		t.Fatalf("healthz: %v; stderr:\n%s", err, stderr.String())
	}

	// Two structurally identical runs: the second must be a cache hit.
	type cacheStats struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	}
	type runResponse struct {
		Result struct {
			FinalTimeNs int64 `json:"final_time_ns"`
		} `json:"result"`
		Cache cacheStats `json:"cache"`
	}
	runBody := `{"engine":"equivalent","scenario":"didactic","params":{"tokens":200}}`
	var first, second runResponse
	postSmoke(t, base+"/v1/run", runBody, http.StatusOK, &first)
	postSmoke(t, base+"/v1/run", runBody, http.StatusOK, &second)
	if first.Result.FinalTimeNs == 0 || first.Cache.Misses != 1 {
		t.Fatalf("first run %+v", first)
	}
	if second.Cache.Hits != 1 || second.Cache.Misses != 1 {
		t.Fatalf("second run was no derive-cache hit: %+v", second.Cache)
	}

	// A batched sweep job over one structural shape: four seeds at lane
	// width 2 make two full batches. The /metrics scrape afterwards must
	// render the batch-occupancy gauge and the per-shape hit gauges.
	var bjob struct {
		ID string `json:"id"`
	}
	postSmoke(t, base+"/v1/sweeps",
		`{"scenario":"didactic","axes":[{"name":"seed","values":[1,2,3,4]}],"params":{"tokens":50},"options":{"workers":1,"batch_width":2}}`,
		http.StatusAccepted, &bjob)
	bdeadline := time.Now().Add(20 * time.Second)
	for {
		var jr struct {
			State string `json:"state"`
			Stats *struct {
				Batches        int     `json:"batches"`
				BatchedPoints  int     `json:"batched_points"`
				BatchOccupancy float64 `json:"batch_occupancy"`
			} `json:"stats"`
		}
		getSmoke(t, base+"/v1/sweeps/"+bjob.ID, &jr)
		if jr.State == "done" {
			if jr.Stats == nil || jr.Stats.Batches != 2 || jr.Stats.BatchedPoints != 4 || jr.Stats.BatchOccupancy != 1.0 {
				t.Fatalf("batched job stats %+v", jr.Stats)
			}
			break
		}
		if jr.State == "failed" || jr.State == "cancelled" {
			t.Fatalf("batched job settled as %q", jr.State)
		}
		if time.Now().After(bdeadline) {
			t.Fatalf("batched job stuck in %q", jr.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metricsBody := string(mraw)
	for _, want := range []string{
		"dyncomp_serve_sweep_batches_total 2",
		"dyncomp_serve_sweep_batch_points_total 4",
		"dyncomp_serve_sweep_batch_occupancy 1.0000",
		"dyncomp_serve_derive_cache_shape_hits{",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// A sweep job slow enough to still run when the DELETE lands.
	var job struct {
		ID string `json:"id"`
	}
	postSmoke(t, base+"/v1/sweeps",
		`{"engine":"reference","scenario":"lte","axes":[{"name":"symbols","values":[20000,20001,20002]}],"options":{"workers":1}}`,
		http.StatusAccepted, &job)
	if job.ID == "" {
		t.Fatal("no job id")
	}
	dreq, _ := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+job.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		var jr struct {
			State string `json:"state"`
		}
		getSmoke(t, base+"/v1/sweeps/"+job.ID, &jr)
		if jr.State == "cancelled" {
			break
		}
		if jr.State == "done" || jr.State == "failed" {
			t.Fatalf("job settled as %q, want cancelled", jr.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown: SIGTERM, clean exit, the farewell lines out.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		exited = true
		if err != nil {
			t.Fatalf("server exited uncleanly: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit within 30s of SIGTERM")
	}
	rest := <-outRest
	if !strings.Contains(rest, "shutting down") || !strings.Contains(rest, "bye") {
		t.Fatalf("shutdown output missing:\n%s", rest)
	}
}

// waitHTTP polls url until it answers 200.
func waitHTTP(url string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(url)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postSmoke(t *testing.T, url, body string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d\n%s", url, resp.StatusCode, wantStatus, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatalf("POST %s: %v\n%s", url, err, raw)
	}
}

func getSmoke(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}
