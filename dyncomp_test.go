package dyncomp

import (
	"fmt"
	"testing"

	"dyncomp/internal/derive"
	"dyncomp/internal/zoo"
)

// buildSmoke is the quickstart architecture: a three-stage pipeline with
// data-dependent durations.
func buildSmoke(tokens int) *Architecture {
	a := NewArchitecture("smoke")
	in := a.AddChannel("in", Rendezvous, 0)
	mid := a.AddChannel("mid", Rendezvous, 0)
	out := a.AddChannel("out", Rendezvous, 0)
	f1 := a.AddFunction("stage1",
		Read{Ch: in}, Exec{Label: "T1", Cost: OpsPerByte(100, 2)}, Write{Ch: mid})
	f2 := a.AddFunction("stage2",
		Read{Ch: mid}, Exec{Label: "T2", Cost: OpsPerByte(150, 1)}, Write{Ch: out})
	p1 := a.AddProcessor("CPU0", 1e9)
	p2 := a.AddProcessor("CPU1", 1e9)
	a.Map(p1, f1)
	a.Map(p2, f2)
	a.AddSource("gen", in, Periodic(500, 0), func(k int) Token {
		return Token{Size: int64(64 + k%32)}
	}, tokens)
	a.AddSink("env", out)
	return a
}

func TestFacadeEndToEnd(t *testing.T) {
	ref, err := RunReference(buildSmoke(300), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := RunEquivalent(buildSmoke(300), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, eq.Trace); err != nil {
		t.Fatalf("traces differ: %v", err)
	}
	if InstantError(ref.Trace, eq.Trace) != 0 {
		t.Fatal("nonzero instant error")
	}
	if eq.Activations >= ref.Activations {
		t.Fatalf("no event saving: %d vs %d", eq.Activations, ref.Activations)
	}
	if eq.GraphNodes == 0 {
		t.Fatal("graph nodes not reported")
	}
	if ref.FinalTimeNs == 0 || ref.Events == 0 {
		t.Fatalf("stats incomplete: %+v", ref)
	}
}

func TestFacadeTimeLimit(t *testing.T) {
	ref, err := RunReference(buildSmoke(1000), RunOptions{LimitNs: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FinalTimeNs != 10_000 {
		t.Fatalf("final time = %d", ref.FinalTimeNs)
	}
	if ref.Trace != nil {
		t.Fatal("trace recorded without Record")
	}
}

func TestFacadeReduce(t *testing.T) {
	full, err := RunEquivalent(zoo.Didactic(zoo.DidacticSpec{Tokens: 50, Period: 500, Seed: 1}), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunEquivalent(zoo.Didactic(zoo.DidacticSpec{Tokens: 50, Period: 500, Seed: 1}), RunOptions{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.GraphNodes > full.GraphNodes {
		t.Fatalf("reduction grew the graph: %d > %d", red.GraphNodes, full.GraphNodes)
	}
}

func TestFacadeHybrid(t *testing.T) {
	ref, err := RunReference(buildSmoke(200), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RunHybrid(buildSmoke(200), []string{"stage1", "stage2"}, RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, hyb.Trace); err != nil {
		t.Fatalf("hybrid traces differ: %v", err)
	}
	if hyb.GraphNodes == 0 {
		t.Fatal("graph nodes not reported")
	}
	if _, err := RunHybrid(buildSmoke(10), []string{"nope"}, RunOptions{}); err == nil {
		t.Fatal("expected error for unknown group member")
	}
}

// TestFacadeAdaptive is the public acceptance criterion of the adaptive
// engine: on the phase-changing workload RunAdaptive produces a
// bit-exact trace against RunReference while paying at most half the
// kernel events, with both switch directions exercised.
func TestFacadeAdaptive(t *testing.T) {
	build := func() *Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 1200, Period: 1100, Seed: 7})
	}
	ref, err := RunReference(build(), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := RunAdaptive(build(), AdaptiveOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, ad.Trace); err != nil {
		t.Fatalf("adaptive trace differs from reference: %v", err)
	}
	if InstantError(ref.Trace, ad.Trace) != 0 {
		t.Fatal("nonzero instant error")
	}
	if ad.Events > ref.Events/2 {
		t.Fatalf("adaptive paid %d kernel events, want <= half of reference's %d", ad.Events, ref.Events)
	}
	if ad.Switches < 1 || ad.Fallbacks < 1 {
		t.Fatalf("switching not exercised: %d switches, %d fallbacks", ad.Switches, ad.Fallbacks)
	}
	if ad.DetailedIterations+ad.AbstractIterations != 1200 {
		t.Fatalf("iteration split %d + %d != 1200", ad.DetailedIterations, ad.AbstractIterations)
	}
	if len(ad.Phases) < 4 {
		t.Fatalf("expected several phases, got %+v", ad.Phases)
	}
}

// TestSweepAdaptiveDeterministicAcrossWorkers requires per-point adaptive
// results (traces, kernel work, switch counts) to be identical for any
// worker count.
func TestSweepAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	axes := []SweepAxis{
		{Name: "tokens", Values: []int64{300, 600}},
		{Name: "seed", Values: []int64{7, 8, 9}},
	}
	gen := func(p SweepPoint) (*Architecture, error) {
		return zoo.Phased(zoo.PhasedSpec{
			Tokens: int(p.Get("tokens", 300)),
			Period: 1100,
			Seed:   p.Get("seed", 7),
		}), nil
	}
	run := func(workers int) *SweepResult {
		res, err := Sweep(axes, gen, SweepOptions{
			Workers: workers, Engine: SweepAdaptive, Record: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, many := run(1), run(4)
	for i := range one.Points {
		a, b := one.Points[i], many.Points[i]
		if err := CompareTraces(a.Trace, b.Trace); err != nil {
			t.Fatalf("point %d (%s) differs across worker counts: %v", i, a.Point, err)
		}
		if a.Activations != b.Activations || a.Events != b.Events ||
			a.Switches != b.Switches || a.Fallbacks != b.Fallbacks {
			t.Fatalf("point %d stats differ: %+v vs %+v", i, a, b)
		}
		if a.Switches < 1 {
			t.Fatalf("point %d: adaptive engine never switched", i)
		}
	}
}

func TestFacadeRejectsInvalid(t *testing.T) {
	a := NewArchitecture("broken")
	a.AddChannel("M", Rendezvous, 0)
	if _, err := RunReference(a, RunOptions{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := RunEquivalent(a, RunOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCostHelpers(t *testing.T) {
	if FixedOps(5)(Token{}).Ops != 5 {
		t.Fatal("FixedOps")
	}
	if OpsPerByte(1, 2)(Token{Size: 3}).Ops != 7 {
		t.Fatal("OpsPerByte")
	}
	if Periodic(10, 1)(2) != 21 {
		t.Fatal("Periodic")
	}
	if Eager()(5) != 0 {
		t.Fatal("Eager")
	}
}

// sweepArch parameterizes the smoke architecture for design-space
// sweeps: every parameter is a dynamic (non-structural) knob, so the
// whole grid shares one temporal dependency graph shape.
func sweepArch(tokens, period, size int64) *Architecture {
	a := NewArchitecture("smoke")
	in := a.AddChannel("in", Rendezvous, 0)
	mid := a.AddChannel("mid", Rendezvous, 0)
	out := a.AddChannel("out", Rendezvous, 0)
	f1 := a.AddFunction("stage1",
		Read{Ch: in}, Exec{Label: "T1", Cost: OpsPerByte(100, 2)}, Write{Ch: mid})
	f2 := a.AddFunction("stage2",
		Read{Ch: mid}, Exec{Label: "T2", Cost: OpsPerByte(150, 1)}, Write{Ch: out})
	a.Map(a.AddProcessor("CPU0", 1e9), f1)
	a.Map(a.AddProcessor("CPU1", 1e9), f2)
	a.AddSource("gen", in, Periodic(Time(period), 0), func(k int) Token {
		return Token{Size: size + int64(k%32)}
	}, int(tokens))
	a.AddSink("env", out)
	return a
}

// The sweep acceptance property: a ≥32-point grid produces per-point
// results bit-identical to individual RunEquivalent calls while deriving
// the shared structural shape exactly once.
func TestSweepMatchesRunEquivalent(t *testing.T) {
	axes := []SweepAxis{
		{Name: "tokens", Values: []int64{20, 40, 60}},
		{Name: "period", Values: []int64{300, 500}},
		{Name: "size", Values: []int64{32, 64, 96, 128, 160, 192}},
	}
	gen := func(p SweepPoint) (*Architecture, error) {
		return sweepArch(p.Get("tokens", 1), p.Get("period", 500), p.Get("size", 64)), nil
	}
	before := derive.Calls()
	res, err := Sweep(axes, gen, SweepOptions{Workers: 8, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 36 {
		t.Fatalf("grid size %d, want 36", len(res.Points))
	}
	if got := derive.Calls() - before; got != 1 {
		t.Fatalf("Derive ran %d times across the grid, want 1", got)
	}
	if res.Stats.DeriveCalls != 1 || res.Stats.Shapes != 1 || res.Stats.CacheHits != 35 {
		t.Fatalf("cache stats: %+v", res.Stats)
	}
	for i, pr := range res.Points {
		if pr.Err != nil {
			t.Fatalf("point %d: %v", i, pr.Err)
		}
		want, err := RunEquivalent(gen2arch(t, gen, pr.Point), RunOptions{Record: true})
		if err != nil {
			t.Fatalf("point %d: RunEquivalent: %v", i, err)
		}
		if err := CompareTraces(want.Trace, pr.Trace); err != nil {
			t.Fatalf("point %d (%s) not bit-identical to RunEquivalent: %v", i, pr.Point, err)
		}
		if want.Activations != pr.Activations || want.Events != pr.Events ||
			want.FinalTimeNs != pr.FinalTimeNs || want.GraphNodes != pr.GraphNodes {
			t.Fatalf("point %d stats differ:\nsweep: %+v\ndirect: %+v", i, pr.RunResult, *want)
		}
	}
}

func gen2arch(t *testing.T, gen SweepGenerator, p SweepPoint) *Architecture {
	t.Helper()
	a, err := gen(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// Sweeping with Baseline pairs every point with a reference run and
// aggregates the paper's ratios.
func TestSweepBaselineAggregates(t *testing.T) {
	axes := []SweepAxis{{Name: "tokens", Values: []int64{30, 60}}}
	gen := func(p SweepPoint) (*Architecture, error) {
		return sweepArch(p.Get("tokens", 1), 400, 64), nil
	}
	res, err := Sweep(axes, gen, SweepOptions{Baseline: true, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Points {
		if pr.Baseline == nil {
			t.Fatalf("point %d missing baseline", i)
		}
		if err := CompareTraces(pr.Baseline.Trace, pr.Trace); err != nil {
			t.Fatalf("point %d not exact vs baseline: %v", i, err)
		}
		if pr.EventRatio <= 1 {
			t.Fatalf("point %d event ratio %.2f", i, pr.EventRatio)
		}
	}
	if res.Stats.EventRatio.N != 2 || res.Stats.EventRatio.Geomean <= 1 {
		t.Fatalf("aggregates: %+v", res.Stats.EventRatio)
	}
}

func TestSweepReportsPointErrors(t *testing.T) {
	axes := []SweepAxis{{Name: "tokens", Values: []int64{10, -1}}}
	gen := func(p SweepPoint) (*Architecture, error) {
		tok := p.Get("tokens", 1)
		if tok < 0 {
			return nil, fmt.Errorf("invalid token count %d", tok)
		}
		return sweepArch(tok, 400, 64), nil
	}
	res, err := Sweep(axes, gen, SweepOptions{})
	if err == nil {
		t.Fatal("sweep with a failing point returned nil error")
	}
	if res == nil || res.Stats.Failed != 1 {
		t.Fatalf("result not returned alongside error: %+v", res)
	}
	if res.Points[0].Err != nil || res.Points[1].Err == nil {
		t.Fatalf("wrong point marked failed")
	}
}
