package dyncomp

import (
	"testing"

	"dyncomp/internal/zoo"
)

// buildSmoke is the quickstart architecture: a three-stage pipeline with
// data-dependent durations.
func buildSmoke(tokens int) *Architecture {
	a := NewArchitecture("smoke")
	in := a.AddChannel("in", Rendezvous, 0)
	mid := a.AddChannel("mid", Rendezvous, 0)
	out := a.AddChannel("out", Rendezvous, 0)
	f1 := a.AddFunction("stage1",
		Read{Ch: in}, Exec{Label: "T1", Cost: OpsPerByte(100, 2)}, Write{Ch: mid})
	f2 := a.AddFunction("stage2",
		Read{Ch: mid}, Exec{Label: "T2", Cost: OpsPerByte(150, 1)}, Write{Ch: out})
	p1 := a.AddProcessor("CPU0", 1e9)
	p2 := a.AddProcessor("CPU1", 1e9)
	a.Map(p1, f1)
	a.Map(p2, f2)
	a.AddSource("gen", in, Periodic(500, 0), func(k int) Token {
		return Token{Size: int64(64 + k%32)}
	}, tokens)
	a.AddSink("env", out)
	return a
}

func TestFacadeEndToEnd(t *testing.T) {
	ref, err := RunReference(buildSmoke(300), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := RunEquivalent(buildSmoke(300), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, eq.Trace); err != nil {
		t.Fatalf("traces differ: %v", err)
	}
	if InstantError(ref.Trace, eq.Trace) != 0 {
		t.Fatal("nonzero instant error")
	}
	if eq.Activations >= ref.Activations {
		t.Fatalf("no event saving: %d vs %d", eq.Activations, ref.Activations)
	}
	if eq.GraphNodes == 0 {
		t.Fatal("graph nodes not reported")
	}
	if ref.FinalTimeNs == 0 || ref.Events == 0 {
		t.Fatalf("stats incomplete: %+v", ref)
	}
}

func TestFacadeTimeLimit(t *testing.T) {
	ref, err := RunReference(buildSmoke(1000), RunOptions{LimitNs: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FinalTimeNs != 10_000 {
		t.Fatalf("final time = %d", ref.FinalTimeNs)
	}
	if ref.Trace != nil {
		t.Fatal("trace recorded without Record")
	}
}

func TestFacadeReduce(t *testing.T) {
	full, err := RunEquivalent(zoo.Didactic(zoo.DidacticSpec{Tokens: 50, Period: 500, Seed: 1}), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunEquivalent(zoo.Didactic(zoo.DidacticSpec{Tokens: 50, Period: 500, Seed: 1}), RunOptions{Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if red.GraphNodes > full.GraphNodes {
		t.Fatalf("reduction grew the graph: %d > %d", red.GraphNodes, full.GraphNodes)
	}
}

func TestFacadeHybrid(t *testing.T) {
	ref, err := RunReference(buildSmoke(200), RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RunHybrid(buildSmoke(200), []string{"stage1", "stage2"}, RunOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareTraces(ref.Trace, hyb.Trace); err != nil {
		t.Fatalf("hybrid traces differ: %v", err)
	}
	if hyb.GraphNodes == 0 {
		t.Fatal("graph nodes not reported")
	}
	if _, err := RunHybrid(buildSmoke(10), []string{"nope"}, RunOptions{}); err == nil {
		t.Fatal("expected error for unknown group member")
	}
}

func TestFacadeRejectsInvalid(t *testing.T) {
	a := NewArchitecture("broken")
	a.AddChannel("M", Rendezvous, 0)
	if _, err := RunReference(a, RunOptions{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := RunEquivalent(a, RunOptions{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestCostHelpers(t *testing.T) {
	if FixedOps(5)(Token{}).Ops != 5 {
		t.Fatal("FixedOps")
	}
	if OpsPerByte(1, 2)(Token{Size: 3}).Ops != 7 {
		t.Fatal("OpsPerByte")
	}
	if Periodic(10, 1)(2) != 21 {
		t.Fatal("Periodic")
	}
	if Eager()(5) != 0 {
		t.Fatal("Eager")
	}
}
