package dyncomp

import (
	"context"

	"dyncomp/internal/derive"
	"dyncomp/internal/engine"

	// Register the four built-in executors with the engine registry.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
)

// EngineOptions is the unified configuration accepted by every engine;
// fields an engine has no use for are ignored (only the adaptive engine
// reads WindowK, only the hybrid engine reads AbstractGroup).
type EngineOptions struct {
	// Record enables evolution-instant and resource-activity recording.
	Record bool
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion).
	LimitNs int64
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// WindowK is the adaptive engine's steady-state confirmation window
	// (0: engine default).
	WindowK int
	// AbstractGroup names the functions the hybrid engine abstracts;
	// required by the hybrid engine, ignored by the others.
	AbstractGroup []string
	// Reduce prunes value-redundant arcs from derived temporal
	// dependency graphs.
	Reduce bool
}

// EngineResult is the unified report of a completed run; fields an
// engine cannot fill stay zero (the reference executor derives no graph,
// only the adaptive engine switches modes).
type EngineResult struct {
	// Trace holds the recorded evolution when EngineOptions.Record was
	// set; it is bit-exact across engines.
	Trace *Trace
	// Activations counts kernel context switches, Events kernel
	// event-queue operations.
	Activations int64
	Events      int64
	// FinalTimeNs is the simulated time reached.
	FinalTimeNs int64
	// WallNs is the host wall-clock time of the execution section.
	WallNs int64
	// Iterations counts completed evolution iterations (0 when the
	// engine does not track them).
	Iterations int
	// GraphNodes is the derived graph size in the paper's counting.
	GraphNodes int
	// Switches and Fallbacks report the adaptive engine's mode changes.
	Switches  int
	Fallbacks int
}

// Engines lists the registered execution engines, sorted by name —
// "adaptive", "equivalent", "hybrid", "reference" plus any future ones.
// Every engine produces bit-exact evolution instants on any architecture
// it accepts; they differ only in how much kernel work they pay.
func Engines() []string { return engine.Names() }

// Run simulates the architecture with the named engine (any name from
// Engines). It is the uniform entry point behind which the four
// executors are interchangeable:
//
//	ref, _ := dyncomp.Run(ctx, "reference", a, dyncomp.EngineOptions{Record: true})
//	eq,  _ := dyncomp.Run(ctx, "equivalent", a, dyncomp.EngineOptions{Record: true})
//	err := dyncomp.CompareTraces(ref.Trace, eq.Trace) // nil: bit-exact
//
// Cancellation is honored at the engine's natural granularity (the
// adaptive engine between execution phases, the others before starting).
func Run(ctx context.Context, engineName string, a *Architecture, opts EngineOptions) (*EngineResult, error) {
	eng, err := engine.Lookup(engineName)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := eng.Run(ctx, a, engine.Options{
		Record:        opts.Record,
		LimitNs:       opts.LimitNs,
		IterLimit:     opts.IterLimit,
		WindowK:       opts.WindowK,
		AbstractGroup: opts.AbstractGroup,
		Derive:        derive.Options{Reduce: opts.Reduce},
	})
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Trace:       r.Trace,
		Activations: r.Activations,
		Events:      r.Events,
		FinalTimeNs: r.FinalTimeNs,
		WallNs:      r.WallNs,
		Iterations:  r.Iterations,
		GraphNodes:  r.GraphNodes,
		Switches:    r.Switches,
		Fallbacks:   r.Fallbacks,
	}, nil
}
