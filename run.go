package dyncomp

import (
	"context"

	"dyncomp/internal/derive"
	"dyncomp/internal/engine"

	// Register the four built-in executors with the engine registry.
	_ "dyncomp/internal/adaptive"
	_ "dyncomp/internal/baseline"
	_ "dyncomp/internal/core"
	_ "dyncomp/internal/hybrid"
)

// Cache is a process-wide, structure-keyed derivation cache. Runs and
// sweeps sharing one Cache derive (and compile) each structural shape
// once while it stays cached, serving every later request for that
// shape by rebinding the cached template — the mechanism behind both
// the sweep engine's statistics and the serving layer's cross-request
// cache. The cache is bounded: beyond its entry limit the
// least-recently-used template is evicted and a later request for that
// shape re-derives. A Cache is safe for concurrent use; the zero value
// is not usable, create it with NewCache or NewCacheLimit.
type Cache struct{ c *derive.Cache }

// NewCache creates an empty derivation cache, bounded to a default of
// 1024 structural shapes, to share across Run and Sweep calls via
// EngineOptions.Cache / SweepOptions.Cache.
func NewCache() *Cache { return &Cache{c: derive.NewCache()} }

// NewCacheLimit creates an empty derivation cache evicting
// least-recently-used templates beyond limit structural shapes;
// limit <= 0 disables eviction.
func NewCacheLimit(limit int) *Cache { return &Cache{c: derive.NewCacheLimit(limit)} }

// Stats returns how many cache requests were served by an existing
// template (hits) and how many derived (misses — the number of
// derivations performed, including re-derivations of evicted shapes).
func (c *Cache) Stats() (hits, misses int64) { return c.c.Stats() }

// Evictions returns how many templates the entry bound has evicted.
func (c *Cache) Evictions() int64 { return c.c.Evictions() }

// Shapes returns the number of distinct structural shapes cached.
func (c *Cache) Shapes() int { return c.c.Shapes() }

// EngineOptions is the unified configuration accepted by every engine;
// fields an engine has no use for are ignored (only the adaptive engine
// reads WindowK, only the hybrid engine reads AbstractGroup).
type EngineOptions struct {
	// Record enables evolution-instant and resource-activity recording.
	Record bool
	// LimitNs bounds the simulated time in nanoseconds (0: run to
	// completion).
	LimitNs int64
	// IterLimit, when positive, bounds the evolution to iterations
	// [0, IterLimit): every source stops after token IterLimit-1.
	IterLimit int
	// WindowK is the adaptive engine's fixed steady-state confirmation
	// window; 0 selects its confidence-driven detector (see Confidence).
	WindowK int
	// Confidence is the adaptive engine's confidence-driven detector
	// threshold in (0, 1), read when WindowK is 0 (0: the engine
	// default, 0.9).
	Confidence float64
	// AbstractGroup names the functions the hybrid engine abstracts;
	// required by the hybrid engine, ignored by the others.
	AbstractGroup []string
	// Reduce prunes value-redundant arcs from derived temporal
	// dependency graphs.
	Reduce bool
	// Cache shares a structure-keyed derivation cache across runs (see
	// NewCache); nil derives privately. The reference executor needs no
	// derivation and ignores it.
	Cache *Cache
	// Progress, when non-nil, receives coarse progress notifications
	// (completed evolution iterations, total or 0 when unknown) at the
	// engine's natural boundaries — the adaptive engine at every mode
	// switch, the others once at completion. Always invoked from the
	// calling goroutine.
	Progress func(done, total int)
	// Interpreted forces ComputeInstant through the tree-walking graph
	// interpreter instead of the compiled evaluation program. Off by
	// default: the compiled evaluator is bit-exact (the property tests
	// run both and compare) and 2–4× faster per iteration. The reference
	// executor evaluates no graph and ignores it.
	Interpreted bool
}

// EngineResult is the unified report of a completed run; fields an
// engine cannot fill stay zero (the reference executor derives no graph,
// only the adaptive engine switches modes). The JSON field names follow
// the snake_case schema documented in docs/SERVING.md; the serving
// layer defines its own wire structs (pinned by tests) so the HTTP API
// cannot shift when this struct evolves.
type EngineResult struct {
	// Trace holds the recorded evolution when EngineOptions.Record was
	// set; it is bit-exact across engines. Traces are not serialized.
	Trace *Trace `json:"-"`
	// Activations counts kernel context switches, Events kernel
	// event-queue operations.
	Activations int64 `json:"activations"`
	Events      int64 `json:"events"`
	// FinalTimeNs is the simulated time reached.
	FinalTimeNs int64 `json:"final_time_ns"`
	// WallNs is the host wall-clock time of the execution section.
	WallNs int64 `json:"wall_ns"`
	// Iterations counts completed evolution iterations (0 when the
	// engine does not track them).
	Iterations int `json:"iterations,omitempty"`
	// GraphNodes is the derived graph size in the paper's counting.
	GraphNodes int `json:"graph_nodes,omitempty"`
	// Switches and Fallbacks report the adaptive engine's mode changes.
	Switches  int `json:"switches,omitempty"`
	Fallbacks int `json:"fallbacks,omitempty"`
}

// Engines lists the registered execution engines, sorted by name —
// "adaptive", "equivalent", "hybrid", "reference" plus any future ones.
// Every engine produces bit-exact evolution instants on any architecture
// it accepts; they differ only in how much kernel work they pay.
func Engines() []string { return engine.Names() }

// Run simulates the architecture with the named engine (any name from
// Engines). It is the uniform entry point behind which the four
// executors are interchangeable:
//
//	ref, _ := dyncomp.Run(ctx, "reference", a, dyncomp.EngineOptions{Record: true})
//	eq,  _ := dyncomp.Run(ctx, "equivalent", a, dyncomp.EngineOptions{Record: true})
//	err := dyncomp.CompareTraces(ref.Trace, eq.Trace) // nil: bit-exact
//
// Cancellation is honored at the engine's natural granularity (the
// adaptive engine between execution phases, the others before starting).
func Run(ctx context.Context, engineName string, a *Architecture, opts EngineOptions) (*EngineResult, error) {
	eng, err := engine.Lookup(engineName)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	eopts := engine.Options{
		Record:        opts.Record,
		LimitNs:       opts.LimitNs,
		IterLimit:     opts.IterLimit,
		WindowK:       opts.WindowK,
		Confidence:    opts.Confidence,
		AbstractGroup: opts.AbstractGroup,
		Derive:        derive.Options{Reduce: opts.Reduce},
		Progress:      opts.Progress,
		Interpreted:   opts.Interpreted,
	}
	if opts.Cache != nil {
		eopts.Cache = opts.Cache.c
	}
	r, err := eng.Run(ctx, a, eopts)
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Trace:       r.Trace,
		Activations: r.Activations,
		Events:      r.Events,
		FinalTimeNs: r.FinalTimeNs,
		WallNs:      r.WallNs,
		Iterations:  r.Iterations,
		GraphNodes:  r.GraphNodes,
		Switches:    r.Switches,
		Fallbacks:   r.Fallbacks,
	}, nil
}
