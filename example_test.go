package dyncomp_test

import (
	"fmt"

	"dyncomp"
)

// buildExample describes a two-stage pipeline with data-dependent
// execution durations.
func buildExample() *dyncomp.Architecture {
	a := dyncomp.NewArchitecture("example")
	in := a.AddChannel("in", dyncomp.Rendezvous, 0)
	mid := a.AddChannel("mid", dyncomp.Rendezvous, 0)
	out := a.AddChannel("out", dyncomp.Rendezvous, 0)
	f1 := a.AddFunction("decode",
		dyncomp.Read{Ch: in},
		dyncomp.Exec{Label: "Tdec", Cost: dyncomp.OpsPerByte(100, 2)},
		dyncomp.Write{Ch: mid})
	f2 := a.AddFunction("render",
		dyncomp.Read{Ch: mid},
		dyncomp.Exec{Label: "Trnd", Cost: dyncomp.OpsPerByte(200, 1)},
		dyncomp.Write{Ch: out})
	a.Map(a.AddProcessor("CPU0", 1e9), f1)
	a.Map(a.AddProcessor("CPU1", 1e9), f2)
	a.AddSource("camera", in, dyncomp.Periodic(1000, 0), func(k int) dyncomp.Token {
		return dyncomp.Token{Size: int64(100 + 10*(k%4))}
	}, 1000)
	a.AddSink("display", out)
	return a
}

// The full workflow: simulate event-by-event, simulate via the equivalent
// model, and verify bit-exact agreement.
func Example() {
	ref, err := dyncomp.RunReference(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	eq, err := dyncomp.RunEquivalent(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, eq.Trace) == nil)
	fmt.Println("events saved:", eq.Activations < ref.Activations)
	// Output:
	// exact: true
	// events saved: true
}

// Resource usage is observed from the computed instants without the
// simulator (the paper's observation time).
func Example_observation() {
	eq, err := dyncomp.RunEquivalent(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	end := dyncomp.Time(eq.FinalTimeNs)
	util := eq.Trace.Utilization("CPU1", 0, end)
	fmt.Println("CPU1 busy more than 20%:", util > 0.2)
	// Output:
	// CPU1 busy more than 20%: true
}

// Partial abstraction: only the decode stage is replaced by an equivalent
// model; the render stage stays event-driven.
func ExampleRunHybrid() {
	ref, err := dyncomp.RunReference(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	hyb, err := dyncomp.RunHybrid(buildExample(), []string{"decode"}, dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, hyb.Trace) == nil)
	// Output:
	// exact: true
}
