package dyncomp_test

import (
	"context"
	"fmt"
	"strings"

	"dyncomp"
)

// buildExample describes a two-stage pipeline with data-dependent
// execution durations.
func buildExample() *dyncomp.Architecture {
	a := dyncomp.NewArchitecture("example")
	in := a.AddChannel("in", dyncomp.Rendezvous, 0)
	mid := a.AddChannel("mid", dyncomp.Rendezvous, 0)
	out := a.AddChannel("out", dyncomp.Rendezvous, 0)
	f1 := a.AddFunction("decode",
		dyncomp.Read{Ch: in},
		dyncomp.Exec{Label: "Tdec", Cost: dyncomp.OpsPerByte(100, 2)},
		dyncomp.Write{Ch: mid})
	f2 := a.AddFunction("render",
		dyncomp.Read{Ch: mid},
		dyncomp.Exec{Label: "Trnd", Cost: dyncomp.OpsPerByte(200, 1)},
		dyncomp.Write{Ch: out})
	a.Map(a.AddProcessor("CPU0", 1e9), f1)
	a.Map(a.AddProcessor("CPU1", 1e9), f2)
	a.AddSource("camera", in, dyncomp.Periodic(1000, 0), func(k int) dyncomp.Token {
		return dyncomp.Token{Size: int64(100 + 10*(k%4))}
	}, 1000)
	a.AddSink("display", out)
	return a
}

// The full workflow: simulate event-by-event, simulate via the equivalent
// model, and verify bit-exact agreement.
func Example() {
	ref, err := dyncomp.RunReference(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	eq, err := dyncomp.RunEquivalent(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, eq.Trace) == nil)
	fmt.Println("events saved:", eq.Activations < ref.Activations)
	// Output:
	// exact: true
	// events saved: true
}

// Resource usage is observed from the computed instants without the
// simulator (the paper's observation time).
func Example_observation() {
	eq, err := dyncomp.RunEquivalent(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	end := dyncomp.Time(eq.FinalTimeNs)
	util := eq.Trace.Utilization("CPU1", 0, end)
	fmt.Println("CPU1 busy more than 20%:", util > 0.2)
	// Output:
	// CPU1 busy more than 20%: true
}

// Design-space exploration: a grid of parameter points (source period ×
// payload size) evaluated concurrently with the equivalent model. All
// points share one structural shape, so the temporal dependency graph is
// derived exactly once and re-bound per point; every per-point result is
// bit-identical to what an individual RunEquivalent call would return.
func ExampleSweep() {
	axes := []dyncomp.SweepAxis{
		{Name: "period", Values: []int64{800, 1000, 1200}},
		{Name: "size", Values: []int64{64, 128}},
	}
	gen := func(p dyncomp.SweepPoint) (*dyncomp.Architecture, error) {
		a := dyncomp.NewArchitecture("example")
		in := a.AddChannel("in", dyncomp.Rendezvous, 0)
		out := a.AddChannel("out", dyncomp.Rendezvous, 0)
		f := a.AddFunction("decode",
			dyncomp.Read{Ch: in},
			dyncomp.Exec{Label: "Tdec", Cost: dyncomp.OpsPerByte(100, 2)},
			dyncomp.Write{Ch: out})
		a.Map(a.AddProcessor("CPU0", 1e9), f)
		size := p.Get("size", 64)
		a.AddSource("camera", in, dyncomp.Periodic(dyncomp.Time(p.Get("period", 1000)), 0),
			func(k int) dyncomp.Token { return dyncomp.Token{Size: size} }, 100)
		a.AddSink("display", out)
		return a, nil
	}
	res, err := dyncomp.Sweep(axes, gen, dyncomp.SweepOptions{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("points:", res.Stats.Points)
	fmt.Println("derivations:", res.Stats.DeriveCalls)
	fmt.Println("cache hits:", res.Stats.CacheHits)
	// The fastest period finishes first; results are in grid order.
	fmt.Println("first point:", res.Points[0].Point, "finished at", res.Points[0].FinalTimeNs, "ns")
	// Output:
	// points: 6
	// derivations: 1
	// cache hits: 5
	// first point: period=800,size=64 finished at 79428 ns
}

// Adaptive engine-switching: the run starts event-by-event, abstracts
// confirmed steady windows into the equivalent model, and falls back to
// detailed execution when the workload parameters change. Here the
// payload size shifts once mid-stream, so the engine switches to the
// abstract mode twice and falls back in between — with a bit-exact
// trace and most kernel events saved.
func ExampleRunAdaptive() {
	build := func() *dyncomp.Architecture {
		a := dyncomp.NewArchitecture("phased")
		in := a.AddChannel("in", dyncomp.Rendezvous, 0)
		out := a.AddChannel("out", dyncomp.Rendezvous, 0)
		f := a.AddFunction("decode",
			dyncomp.Read{Ch: in},
			dyncomp.Exec{Label: "Tdec", Cost: dyncomp.OpsPerByte(100, 2)},
			dyncomp.Write{Ch: out})
		a.Map(a.AddProcessor("CPU0", 1e9), f)
		a.AddSource("camera", in, dyncomp.Periodic(1000, 0), func(k int) dyncomp.Token {
			if k < 500 { // two steady phases: the size regime shifts once
				return dyncomp.Token{Size: 100}
			}
			return dyncomp.Token{Size: 200}
		}, 1000)
		a.AddSink("display", out)
		return a
	}
	ref, err := dyncomp.RunReference(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	ad, err := dyncomp.RunAdaptive(build(), dyncomp.AdaptiveOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, ad.Trace) == nil)
	fmt.Println("switches:", ad.Switches, "fallbacks:", ad.Fallbacks)
	fmt.Println("most events saved:", ad.Events*2 < ref.Events)
	// Output:
	// exact: true
	// switches: 2 fallbacks: 1
	// most events saved: true
}

// Partial abstraction: only the decode stage is replaced by an equivalent
// model; the render stage stays event-driven.
func ExampleRunHybrid() {
	ref, err := dyncomp.RunReference(buildExample(), dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	hyb, err := dyncomp.RunHybrid(buildExample(), []string{"decode"}, dyncomp.RunOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, hyb.Trace) == nil)
	// Output:
	// exact: true
}

// Engines are addressed by registered name through one uniform entry
// point; this is the replacement for the deprecated per-engine wrappers
// (RunReference, RunEquivalent, RunHybrid) and works for every engine
// the registry knows, present or future.
func ExampleRun() {
	ctx := context.Background()
	ref, err := dyncomp.Run(ctx, "reference", buildExample(), dyncomp.EngineOptions{Record: true})
	if err != nil {
		panic(err)
	}
	eq, err := dyncomp.Run(ctx, "equivalent", buildExample(), dyncomp.EngineOptions{Record: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", dyncomp.CompareTraces(ref.Trace, eq.Trace) == nil)
	fmt.Println("events saved:", eq.Activations < ref.Activations)
	// Output:
	// exact: true
	// events saved: true
}

// The registry lists every executor; any listed name is valid for Run,
// SweepOptions.EngineName and the CLIs' -engine flags.
func ExampleEngines() {
	fmt.Println(strings.Join(dyncomp.Engines(), " "))
	// Output:
	// adaptive equivalent hybrid reference
}

// A shared cache derives the temporal dependency graph once per
// structural shape: three runs differing only in the source period pay
// one symbolic execution — the mechanism the sweep engine and the
// dyncomp-serve HTTP layer use across requests.
func ExampleNewCache() {
	build := func(period dyncomp.Time) *dyncomp.Architecture {
		a := dyncomp.NewArchitecture("example")
		in := a.AddChannel("in", dyncomp.Rendezvous, 0)
		out := a.AddChannel("out", dyncomp.Rendezvous, 0)
		f := a.AddFunction("decode",
			dyncomp.Read{Ch: in},
			dyncomp.Exec{Label: "Tdec", Cost: dyncomp.OpsPerByte(100, 2)},
			dyncomp.Write{Ch: out})
		a.Map(a.AddProcessor("CPU0", 1e9), f)
		a.AddSource("camera", in, dyncomp.Periodic(period, 0),
			func(k int) dyncomp.Token { return dyncomp.Token{Size: 64} }, 100)
		a.AddSink("display", out)
		return a
	}
	cache := dyncomp.NewCache()
	ctx := context.Background()
	for _, period := range []dyncomp.Time{800, 1000, 1200} {
		if _, err := dyncomp.Run(ctx, "equivalent", build(period), dyncomp.EngineOptions{Cache: cache}); err != nil {
			panic(err)
		}
	}
	hits, misses := cache.Stats()
	fmt.Println("derivations:", misses, "rebinds:", hits)
	// Output:
	// derivations: 1 rebinds: 2
}
