// Custom temporal dependency graph example: writes the paper's equations
// (1)-(6) by hand — the way the paper's authors did before their
// generation tool existed — evaluates them with ComputeInstant steps, and
// cross-checks the result against the automatically derived graph of the
// same architecture.
//
//	go run ./examples/custom_tdg
package main

import (
	"fmt"
	"log"

	"dyncomp/internal/derive"
	"dyncomp/internal/maxplus"
	"dyncomp/internal/tdg"
	"dyncomp/internal/zoo"
)

func main() {
	const tokens = 1000
	spec := zoo.DidacticSpec{Tokens: tokens, Period: 1000, Seed: 77}

	// Hand-written graph implementing, literally:
	//   xM1(k) = u(k) ⊕ xM4(k-1)                                  (1)
	//   xM2(k) = xM1(k)⊗Ti1(k) ⊕ xM5(k-1)                         (2)
	//   xM3(k) = xM2(k)⊗Tj1(k) ⊕ xM4(k-1)                         (3)
	//   xM4(k) = xM3(k)⊗Ti2(k) ⊕ xM2(k)⊗Ti3(k) ⊕ xM5(k-1)         (4)
	//   xM5(k) = xM4(k)⊗Tj3(k) ⊕ xM6(k-1)                         (5)
	//   y(k)   = xM6(k) = xM5(k)⊗Ti4(k)                           (6)
	g := tdg.New("didactic-by-hand")
	u := g.AddInput("u")
	xM1 := g.AddNode("xM1", tdg.Intermediate)
	xM2 := g.AddNode("xM2", tdg.Intermediate)
	xM3 := g.AddNode("xM3", tdg.Intermediate)
	xM4 := g.AddNode("xM4", tdg.Intermediate)
	xM5 := g.AddNode("xM5", tdg.Intermediate)
	xM6 := g.AddNode("xM6", tdg.Output)

	dur := func(sel int) tdg.WeightFn {
		return func(k int) maxplus.T {
			ti1, tj1, ti2, ti3, tj3, ti4 := zoo.DidacticDurations(spec.Seed, k)
			return []maxplus.T{ti1, tj1, ti2, ti3, tj3, ti4}[sel]
		}
	}
	g.AddArc(u, xM1, 0, nil)
	g.AddArc(xM4, xM1, 1, nil)
	g.AddArc(xM1, xM2, 0, dur(0))
	g.AddArc(xM5, xM2, 1, nil)
	g.AddArc(xM2, xM3, 0, dur(1))
	g.AddArc(xM4, xM3, 1, nil)
	g.AddArc(xM3, xM4, 0, dur(2))
	g.AddArc(xM2, xM4, 0, dur(3))
	g.AddArc(xM5, xM4, 1, nil) // the paper's redundant term, kept literal
	g.AddArc(xM4, xM5, 0, dur(4))
	g.AddArc(xM6, xM5, 1, nil)
	g.AddArc(xM5, xM6, 0, dur(5))
	if err := g.Freeze(); err != nil {
		log.Fatal(err)
	}

	hand, err := tdg.NewEvaluator(g)
	if err != nil {
		log.Fatal(err)
	}

	// Automatically derived graph of the same architecture.
	dres, err := derive.Derive(zoo.Didactic(spec), derive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	auto, err := tdg.NewEvaluator(dres.Graph)
	if err != nil {
		log.Fatal(err)
	}

	for k := 0; k < tokens; k++ {
		in := []maxplus.T{maxplus.T(int64(k) * 1000)}
		yh, err := hand.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		ya, err := auto.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		if yh[0] != ya[0] {
			log.Fatalf("k=%d: hand-written %v != derived %v", k, yh[0], ya[0])
		}
	}
	fmt.Printf("hand-written equations (1)-(6) and the derived graph agree on %d iterations\n", tokens)
	fmt.Printf("hand-written graph: %d nodes (%d with delayed references)\n", g.NodeCount(), g.NodeCountWithDelays())
	fmt.Printf("derived graph:      %d nodes (%d with delayed references)\n",
		dres.Graph.NodeCount(), dres.Graph.NodeCountWithDelays())
	fmt.Printf("last output instant: y(%d) = %v ns\n", tokens-1, hand.Value(xM6))
}
