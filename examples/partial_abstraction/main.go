// Partial abstraction example: the paper's general formulation — "the
// proposed method allows some of the architecture processes to be
// combined into a single equivalent executable model". Here the LTE
// receiver's seven DSP functions are abstracted while the hardware turbo
// decoder stays event-driven; the decoder's backpressure flows into the
// abstracted group through the confirmed boundary transfers, and the
// result remains bit-exact against the fully simulated model.
//
//	go run ./examples/partial_abstraction
package main

import (
	"fmt"
	"log"

	"dyncomp"
	"dyncomp/internal/lte"
)

func main() {
	const frames = 20
	symbols := frames * lte.SymbolsPerFrame
	build := func() *dyncomp.Architecture {
		return lte.Receiver(lte.Spec{Symbols: symbols, Seed: 23})
	}

	full, err := dyncomp.RunReference(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := dyncomp.RunHybrid(build(), lte.FunctionNames[:7], dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}
	equivalent, err := dyncomp.RunEquivalent(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}

	if err := dyncomp.CompareTraces(full.Trace, hybrid.Trace); err != nil {
		log.Fatalf("hybrid accuracy violated: %v", err)
	}
	if err := dyncomp.CompareTraces(full.Trace, equivalent.Trace); err != nil {
		log.Fatalf("equivalent accuracy violated: %v", err)
	}

	fmt.Printf("LTE receiver, %d symbols — all three models agree bit-exact\n\n", symbols)
	fmt.Printf("%-34s %12s %10s\n", "model", "activations", "saving")
	fmt.Printf("%-34s %12d %10s\n", "fully simulated", full.Activations, "-")
	fmt.Printf("%-34s %12d %9.2fx\n", "DSP cluster abstracted (hybrid)", hybrid.Activations,
		float64(full.Activations)/float64(hybrid.Activations))
	fmt.Printf("%-34s %12d %9.2fx\n", "whole architecture abstracted", equivalent.Activations,
		float64(full.Activations)/float64(equivalent.Activations))
}
