// Adaptive engine-switching on a phase-changing workload: the didactic
// architecture processes a token stream whose size regime moves between
// steady plateaus and noisy transients. The adaptive executor simulates
// event-by-event until it confirms a steady state, hot-switches the
// steady region to the equivalent (max,+) model, and falls back to
// event-driven execution at every reconfiguration — producing the exact
// reference trace while paying kernel events only where the workload
// actually changes.
package main

import (
	"fmt"
	"os"

	"dyncomp"
	"dyncomp/internal/zoo"
)

func main() {
	build := func() *dyncomp.Architecture {
		return zoo.Phased(zoo.PhasedSpec{Tokens: 2000, Period: 1100, Seed: 7})
	}

	ref, err := dyncomp.RunReference(build(), dyncomp.RunOptions{Record: true})
	check(err)
	ad, err := dyncomp.RunAdaptive(build(), dyncomp.AdaptiveOptions{Record: true})
	check(err)

	fmt.Printf("bit-exact vs reference: %t\n", dyncomp.CompareTraces(ref.Trace, ad.Trace) == nil)
	fmt.Printf("kernel events: reference %d, adaptive %d (%.1f%% saved)\n",
		ref.Events, ad.Events, 100*(1-float64(ad.Events)/float64(ref.Events)))
	fmt.Printf("switches: %d, fallbacks: %d; iterations: %d detailed / %d abstract\n\n",
		ad.Switches, ad.Fallbacks, ad.DetailedIterations, ad.AbstractIterations)

	fmt.Printf("%-10s %10s %10s %12s\n", "mode", "from k", "to k", "events")
	for _, ph := range ad.Phases {
		fmt.Printf("%-10s %10d %10d %12d\n", ph.Mode, ph.StartK, ph.EndK, ph.Events)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
