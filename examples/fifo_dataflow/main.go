// FIFO dataflow example: the paper notes that FIFO communication needs
// additional evolution instants (a write instant and a read instant per
// channel). This example builds a producer/consumer pipeline over bounded
// FIFOs, runs both engines, and shows how buffering decouples the stages
// while capacity backpressure still bounds the run-ahead — all captured
// exactly by the equivalent model.
//
//	go run ./examples/fifo_dataflow
package main

import (
	"fmt"
	"log"

	"dyncomp"
)

func main() {
	build := func(capacity int) *dyncomp.Architecture {
		a := dyncomp.NewArchitecture("fifo-dataflow")
		in := a.AddChannel("in", dyncomp.FIFO, capacity)
		mid := a.AddChannel("mid", dyncomp.FIFO, capacity)
		out := a.AddChannel("out", dyncomp.FIFO, capacity)

		// A fast producer stage and a slow consumer stage: the FIFO
		// absorbs bursts until backpressure kicks in.
		prod := a.AddFunction("producer",
			dyncomp.Read{Ch: in},
			dyncomp.Exec{Label: "Tprod", Cost: dyncomp.FixedOps(200)},
			dyncomp.Write{Ch: mid},
		)
		cons := a.AddFunction("consumer",
			dyncomp.Read{Ch: mid},
			dyncomp.Exec{Label: "Tcons", Cost: dyncomp.OpsPerByte(600, 3)},
			dyncomp.Write{Ch: out},
		)
		a.Map(a.AddProcessor("P0", 1e9), prod)
		a.Map(a.AddProcessor("P1", 1e9), cons)
		a.AddSource("gen", in, dyncomp.Periodic(400, 0), func(k int) dyncomp.Token {
			return dyncomp.Token{Size: int64(50 + (k*13)%100)}
		}, 5000)
		a.AddSink("env", out)
		return a
	}

	for _, capacity := range []int{1, 4, 16} {
		ref, err := dyncomp.RunReference(build(capacity), dyncomp.RunOptions{Record: true})
		if err != nil {
			log.Fatal(err)
		}
		eq, err := dyncomp.RunEquivalent(build(capacity), dyncomp.RunOptions{Record: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := dyncomp.CompareTraces(ref.Trace, eq.Trace); err != nil {
			log.Fatalf("capacity %d: accuracy violated: %v", capacity, err)
		}
		// With deeper FIFOs the producer runs further ahead of the
		// consumer: measure the k-th write-to-read lag on "mid".
		w := ref.Trace.Instants("mid.w")
		r := ref.Trace.Instants("mid.r")
		var lag float64
		for k := range w {
			lag += float64(r[k] - w[k])
		}
		lag /= float64(len(w))
		fmt.Printf("capacity %2d: exact ✓  event ratio %.2f  makespan %d ns  mean write→read lag %.0f ns\n",
			capacity, float64(ref.Activations)/float64(eq.Activations), ref.FinalTimeNs, lag)
	}
}
