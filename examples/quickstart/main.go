// Quickstart: describe a small multi-core architecture, simulate it with
// the event-driven reference executor and with the equivalent model
// (dynamic computation of evolution instants), verify that both agree
// bit-exact, and report the event saving.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dyncomp"
)

func main() {
	build := func() *dyncomp.Architecture {
		a := dyncomp.NewArchitecture("quickstart")

		// Application: three functions in a diamond — a splitter feeding
		// two parallel workers whose results a merger joins.
		in := a.AddChannel("in", dyncomp.Rendezvous, 0)
		left := a.AddChannel("left", dyncomp.Rendezvous, 0)
		right := a.AddChannel("right", dyncomp.Rendezvous, 0)
		leftOut := a.AddChannel("leftOut", dyncomp.Rendezvous, 0)
		rightOut := a.AddChannel("rightOut", dyncomp.Rendezvous, 0)
		out := a.AddChannel("out", dyncomp.Rendezvous, 0)

		split := a.AddFunction("split",
			dyncomp.Read{Ch: in},
			dyncomp.Exec{Label: "Tsplit", Cost: dyncomp.OpsPerByte(50, 0.5)},
			dyncomp.Write{Ch: left},
			dyncomp.Write{Ch: right},
		)
		workL := a.AddFunction("workL",
			dyncomp.Read{Ch: left},
			dyncomp.Exec{Label: "TworkL", Cost: dyncomp.OpsPerByte(200, 4)},
			dyncomp.Write{Ch: leftOut},
		)
		workR := a.AddFunction("workR",
			dyncomp.Read{Ch: right},
			dyncomp.Exec{Label: "TworkR", Cost: dyncomp.OpsPerByte(300, 2)},
			dyncomp.Write{Ch: rightOut},
		)
		merge := a.AddFunction("merge",
			dyncomp.Read{Ch: leftOut},
			dyncomp.Exec{Label: "TmergeL", Cost: dyncomp.FixedOps(80)},
			dyncomp.Read{Ch: rightOut},
			dyncomp.Exec{Label: "TmergeR", Cost: dyncomp.FixedOps(120)},
			dyncomp.Write{Ch: out},
		)

		// Platform and mapping: splitter and merger share a CPU; the two
		// workers run on dedicated hardware units.
		cpu := a.AddProcessor("CPU", 1e9)
		hw := a.AddHardware("ACC", 2e9)
		a.Map(cpu, split, merge)
		a.Map(hw, workL, workR)

		// Environment: 10000 tokens of varying size, one every 1.5 µs.
		a.AddSource("gen", in, dyncomp.Periodic(1500, 0), func(k int) dyncomp.Token {
			return dyncomp.Token{Size: int64(128 + (k*37)%256)}
		}, 10000)
		a.AddSink("env", out)
		return a
	}

	ref, err := dyncomp.RunReference(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}
	eq, err := dyncomp.RunEquivalent(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}

	if err := dyncomp.CompareTraces(ref.Trace, eq.Trace); err != nil {
		log.Fatalf("accuracy violated: %v", err)
	}
	fmt.Println("all evolution instants identical between the two models")
	fmt.Printf("reference executor : %7d kernel activations, %8d events\n", ref.Activations, ref.Events)
	fmt.Printf("equivalent model   : %7d kernel activations, %8d events (graph: %d nodes)\n",
		eq.Activations, eq.Events, eq.GraphNodes)
	fmt.Printf("event ratio        : %.2f\n", float64(ref.Activations)/float64(eq.Activations))

	// Resource usage is observed from the computed instants, without the
	// simulator (the paper's observation time).
	end := dyncomp.Time(ref.FinalTimeNs)
	for _, r := range []string{"CPU", "ACC"} {
		fmt.Printf("%-3s utilization: reference %.1f%%, equivalent %.1f%%\n",
			r, 100*ref.Trace.Utilization(r, 0, end), 100*eq.Trace.Utilization(r, 0, end))
	}
}
