// LTE receiver example: the paper's Section V case study. Simulates the
// physical-layer receiver pipeline (7 DSP functions + a hardware turbo
// decoder) over several frames with varying transmission parameters and
// prints the Fig. 6-style observations: input/output instants over the
// simulation time and complexity-per-time-unit traces over the
// observation time.
//
//	go run ./examples/lte
package main

import (
	"fmt"
	"log"
	"strings"

	"dyncomp"
	"dyncomp/internal/lte"
)

func main() {
	const frames = 3
	symbols := frames * lte.SymbolsPerFrame

	build := func() *dyncomp.Architecture {
		return lte.Receiver(lte.Spec{Symbols: symbols, Seed: 23})
	}

	ref, err := dyncomp.RunReference(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}
	eq, err := dyncomp.RunEquivalent(build(), dyncomp.RunOptions{Record: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := dyncomp.CompareTraces(ref.Trace, eq.Trace); err != nil {
		log.Fatalf("accuracy violated: %v", err)
	}

	fmt.Printf("LTE receiver, %d frames of %d symbols (period %d ns)\n", frames, lte.SymbolsPerFrame, int64(lte.SymbolPeriod))
	for f := 0; f < frames; f++ {
		nprb, qm, rate := lte.FrameParams(23, f)
		fmt.Printf("  frame %d: %3d PRB, %d bits/symbol, rate %.2f\n", f, nprb, qm, rate)
	}
	fmt.Printf("event ratio: %.2f (activations %d -> %d)\n\n",
		float64(ref.Activations)/float64(eq.Activations), ref.Activations, eq.Activations)

	// Fig. 6 (a): evolution over the simulation time.
	u := eq.Trace.Instants("Sym")
	y := eq.Trace.Instants("D8")
	fmt.Println("evolution over simulation time (first frame):")
	for k := 0; k < lte.SymbolsPerFrame; k++ {
		fmt.Printf("  u(%2d) = %7d ns   y(%2d) = %7d ns\n", k, int64(u[k]), k, int64(y[k]))
	}
	fmt.Println()

	// Fig. 6 (b)/(c): complexity per time unit on the observation time,
	// reconstructed from the computed instants.
	end := eq.Trace.EndTime()
	for _, r := range []string{"DSP", "HW"} {
		s, err := eq.Trace.ComplexitySeries(r, 0, end, 25_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s complexity (GOPS, 25 µs bins, peak %.1f):\n", r, s.Max())
		fmt.Println(sparkline(s.Values, s.Max()))
	}
}

// sparkline renders a crude ASCII profile of a series.
func sparkline(vals []float64, max float64) string {
	if max == 0 {
		return "(idle)"
	}
	levels := []rune(" .:-=+*#%@")
	var b strings.Builder
	b.WriteString("  ")
	for _, v := range vals {
		idx := int(v / max * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
