// Pipeline scaling example: reproduces the trend of the paper's Table I —
// the more architecture processes the equivalent model abstracts, the
// more simulation events it saves, and the speed-up tracks the event
// ratio. Runs chains of 1..4 didactic stages and prints measured event
// ratios and wall-clock speed-ups.
//
//	go run ./examples/pipeline_scaling
package main

import (
	"fmt"
	"log"
	"time"

	"dyncomp"
	"dyncomp/internal/zoo"
)

func main() {
	const tokens = 5000
	fmt.Printf("%-8s %-8s %-12s %-12s %-10s\n", "stages", "nodes", "event ratio", "speed-up", "baseline")
	for stages := 1; stages <= 4; stages++ {
		spec := zoo.DidacticSpec{Tokens: tokens, Period: 1200, Seed: 41}

		start := time.Now()
		ref, err := dyncomp.RunReference(zoo.DidacticChain(stages, spec), dyncomp.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		refWall := time.Since(start)

		start = time.Now()
		eq, err := dyncomp.RunEquivalent(zoo.DidacticChain(stages, spec), dyncomp.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		eqWall := time.Since(start)

		fmt.Printf("%-8d %-8d %-12.2f %-12.2f %v\n",
			stages, eq.GraphNodes,
			float64(ref.Activations)/float64(eq.Activations),
			refWall.Seconds()/eqWall.Seconds(),
			refWall.Round(time.Millisecond))
	}
}
