// Design-space sweep example: explores a grid of candidate platform
// configurations for a two-stage streaming application — CPU speeds,
// source periods and payload sizes — with dyncomp.Sweep. The grid shares
// one structural shape, so the temporal dependency graph is derived once
// and re-bound to all points, and the points are evaluated concurrently.
// The example then ranks the configurations by sustained throughput.
//
//	go run ./examples/design_sweep
package main

import (
	"fmt"
	"log"
	"sort"

	"dyncomp"
)

// build models the candidate: two pipeline stages on their own CPUs,
// whose speeds are design parameters, fed periodically.
func build(speedMHz, period, size int64) *dyncomp.Architecture {
	a := dyncomp.NewArchitecture("candidate")
	in := a.AddChannel("in", dyncomp.Rendezvous, 0)
	mid := a.AddChannel("mid", dyncomp.Rendezvous, 0)
	out := a.AddChannel("out", dyncomp.Rendezvous, 0)
	f1 := a.AddFunction("filter",
		dyncomp.Read{Ch: in},
		dyncomp.Exec{Label: "Tf", Cost: dyncomp.OpsPerByte(400, 3)},
		dyncomp.Write{Ch: mid})
	f2 := a.AddFunction("encode",
		dyncomp.Read{Ch: mid},
		dyncomp.Exec{Label: "Te", Cost: dyncomp.OpsPerByte(600, 2)},
		dyncomp.Write{Ch: out})
	a.Map(a.AddProcessor("CPU0", float64(speedMHz)*1e6), f1)
	a.Map(a.AddProcessor("CPU1", float64(speedMHz)*1e6), f2)
	a.AddSource("sensor", in, dyncomp.Periodic(dyncomp.Time(period), 0), func(k int) dyncomp.Token {
		return dyncomp.Token{Size: size}
	}, 2000)
	a.AddSink("uplink", out)
	return a
}

func main() {
	axes := []dyncomp.SweepAxis{
		{Name: "mhz", Values: []int64{400, 800, 1600}},
		{Name: "period", Values: []int64{1500, 3000}},
		{Name: "size", Values: []int64{128, 512}},
	}
	res, err := dyncomp.Sweep(axes, func(p dyncomp.SweepPoint) (*dyncomp.Architecture, error) {
		return build(p.Get("mhz", 800), p.Get("period", 1500), p.Get("size", 128)), nil
	}, dyncomp.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Rank by sustained throughput: tokens per simulated millisecond.
	pts := res.Points
	sort.Slice(pts, func(i, j int) bool {
		return float64(pts[i].FinalTimeNs) < float64(pts[j].FinalTimeNs)
	})
	fmt.Printf("%-8s %-8s %-8s %-14s %-12s\n", "MHz", "period", "size", "makespan (µs)", "tokens/ms")
	for _, pr := range pts {
		fmt.Printf("%-8d %-8d %-8d %-14.1f %-12.1f\n",
			pr.Point.Get("mhz", 0), pr.Point.Get("period", 0), pr.Point.Get("size", 0),
			float64(pr.FinalTimeNs)/1e3, 2000/(float64(pr.FinalTimeNs)/1e6))
	}
	fmt.Printf("\n%d configurations, %d derivation(s), %d cache hits, evaluated in %s\n",
		res.Stats.Points, res.Stats.DeriveCalls, res.Stats.CacheHits, res.Stats.Wall.Round(1e6))
}
